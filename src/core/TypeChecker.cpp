//===- TypeChecker.cpp - Usuba type checking ------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/TypeChecker.h"

#include "core/AstPasses.h"
#include "support/BitUtils.h"
#include "types/TypeClasses.h"

#include <map>
#include <set>

using namespace usuba;
using namespace usuba::ast;

namespace {

/// A distilled type: atom scalar plus total flattened element count.
struct VType {
  Type Scalar = Type::nat();
  unsigned Len = 0;

  friend bool operator==(const VType &A, const VType &B) {
    return A.Len == B.Len && A.Scalar == B.Scalar;
  }
  std::string str() const {
    return Scalar.str() + "[" + std::to_string(Len) + "]";
  }
  /// The type used for class-instance resolution.
  Type resolved() const {
    return Len == 1 ? Scalar : Type::vector(Scalar, Len);
  }
  unsigned wordBits() const { return Scalar.wordSize().Bits; }
};

VType distill(const Type &T) {
  assert(!T.isNat() && "distilling nat");
  return {T.scalarType(), T.flattenedLength()};
}

/// Signature of a checked node, used at call sites.
struct NodeSig {
  std::vector<VType> Params;
  std::vector<VType> Returns;
};

/// An element range read or written by an equation.
struct ElemRange {
  unsigned VarId = 0;
  unsigned Offset = 0;
  unsigned Len = 0;
  SourceLoc Loc;
};

/// Checks one node: expression typing, instance resolution, per-element
/// single assignment, and topological sorting of the equations.
class NodeChecker {
public:
  NodeChecker(Node &N, const std::map<std::string, NodeSig> &Sigs,
              const Arch &Target, DiagnosticEngine &Diags)
      : N(N), Sigs(Sigs), Target(Target), Diags(Diags) {}

  bool run();

private:
  bool declareVars();
  bool checkEquation(Equation &Eqn, std::vector<ElemRange> &Defs,
                     std::vector<ElemRange> &Uses);
  bool resolveLValue(const LValue &L, ElemRange &Out, VType &Ty);
  std::optional<VType> checkExpr(const Expr &E, const VType *Expected,
                                 std::vector<ElemRange> &Uses);

  /// Resolves a Var/Index/Range access chain to its structured type and
  /// flattened element range.
  std::optional<Type> resolveAccess(const Expr &E, ElemRange &Range);

  bool evalConst(const ConstExpr &CE, int64_t &Out) {
    bool Ok = true;
    std::map<std::string, int64_t> Empty;
    Out = CE.evaluate(Empty, Ok);
    if (!Ok)
      Diags.error(CE.Loc, "compile-time expression cannot be evaluated "
                          "(division by zero or unbound index variable)");
    return Ok;
  }

  bool instanceError(OpClass C, const VType &Ty, SourceLoc Loc) {
    InstanceResolution R = resolveInstance(C, Ty.resolved(), Target);
    if (R.Found)
      return false;
    Diags.error(Loc, R.Reason);
    return true;
  }

  Node &N;
  const std::map<std::string, NodeSig> &Sigs;
  const Arch &Target;
  DiagnosticEngine &Diags;

  std::map<std::string, unsigned> VarIds;
  std::vector<const VarDecl *> Decls;
  unsigned NumParams = 0;
};

bool NodeChecker::declareVars() {
  for (const auto *List : {&N.Params, &N.Returns, &N.Vars}) {
    for (const VarDecl &D : *List) {
      if (D.Ty.isNat()) {
        Diags.error(D.Loc, "variable '" + D.Name +
                               "' cannot have type nat (nat is reserved "
                               "for compile-time indices)");
        return false;
      }
      if (D.Ty.isPolymorphic()) {
        Diags.error(D.Loc,
                    "variable '" + D.Name + "' has polymorphic type " +
                        D.Ty.str() +
                        " after monomorphization; pass -w <m> (and -V/-H) "
                        "to fix the word size and direction");
        return false;
      }
      if (!VarIds.emplace(D.Name, Decls.size()).second) {
        Diags.error(D.Loc, "redeclaration of '" + D.Name + "'");
        return false;
      }
      Decls.push_back(&D);
    }
    if (List == &N.Params)
      NumParams = static_cast<unsigned>(Decls.size());
  }
  return true;
}

std::optional<Type> NodeChecker::resolveAccess(const Expr &E,
                                               ElemRange &Range) {
  switch (E.K) {
  case Expr::Kind::Var: {
    auto It = VarIds.find(E.Name);
    if (It == VarIds.end()) {
      Diags.error(E.Loc, "unknown variable '" + E.Name + "'");
      return std::nullopt;
    }
    Range.VarId = It->second;
    Range.Offset = 0;
    Range.Len = Decls[It->second]->Ty.flattenedLength();
    Range.Loc = E.Loc;
    return Decls[It->second]->Ty;
  }
  case Expr::Kind::Index: {
    std::optional<Type> BaseTy = resolveAccess(*E.Base, Range);
    if (!BaseTy)
      return std::nullopt;
    if (!BaseTy->isVector()) {
      Diags.error(E.Loc, "indexing a non-vector of type " + BaseTy->str());
      return std::nullopt;
    }
    int64_t Index;
    if (!evalConst(*E.Index0, Index))
      return std::nullopt;
    if (Index < 0 || Index >= static_cast<int64_t>(BaseTy->length())) {
      Diags.error(E.Loc, "index " + std::to_string(Index) +
                             " out of bounds for type " + BaseTy->str());
      return std::nullopt;
    }
    unsigned ElemLen = BaseTy->elementType().flattenedLength();
    Range.Offset += static_cast<unsigned>(Index) * ElemLen;
    Range.Len = ElemLen;
    return BaseTy->elementType();
  }
  case Expr::Kind::Range: {
    std::optional<Type> BaseTy = resolveAccess(*E.Base, Range);
    if (!BaseTy)
      return std::nullopt;
    if (!BaseTy->isVector()) {
      Diags.error(E.Loc, "slicing a non-vector of type " + BaseTy->str());
      return std::nullopt;
    }
    int64_t Lo, Hi;
    if (!evalConst(*E.Index0, Lo) || !evalConst(*E.Index1, Hi))
      return std::nullopt;
    if (Lo < 0 || Hi < Lo || Hi >= static_cast<int64_t>(BaseTy->length())) {
      Diags.error(E.Loc, "range [" + std::to_string(Lo) + ".." +
                             std::to_string(Hi) +
                             "] out of bounds for type " + BaseTy->str());
      return std::nullopt;
    }
    unsigned ElemLen = BaseTy->elementType().flattenedLength();
    Range.Offset += static_cast<unsigned>(Lo) * ElemLen;
    Range.Len = static_cast<unsigned>(Hi - Lo + 1) * ElemLen;
    return Type::vector(BaseTy->elementType(),
                        static_cast<unsigned>(Hi - Lo + 1));
  }
  default:
    Diags.error(E.Loc, "only variables can be indexed");
    return std::nullopt;
  }
}

std::optional<VType> NodeChecker::checkExpr(const Expr &E,
                                            const VType *Expected,
                                            std::vector<ElemRange> &Uses) {
  switch (E.K) {
  case Expr::Kind::Var:
  case Expr::Kind::Index:
  case Expr::Kind::Range: {
    ElemRange Range;
    std::optional<Type> Ty = resolveAccess(E, Range);
    if (!Ty)
      return std::nullopt;
    Uses.push_back(Range);
    return distill(*Ty);
  }

  case Expr::Kind::IntLit: {
    if (!Expected) {
      Diags.error(E.Loc, "integer literal needs a typed context");
      return std::nullopt;
    }
    unsigned Bits = Expected->wordBits() * Expected->Len;
    if (Bits < 64 && (E.IntValue >> Bits) != 0) {
      Diags.error(E.Loc, "literal " + std::to_string(E.IntValue) +
                             " does not fit in " + std::to_string(Bits) +
                             " bits (" + Expected->str() + ")");
      return std::nullopt;
    }
    return *Expected;
  }

  case Expr::Kind::Tuple: {
    VType Out;
    bool First = true;
    for (const auto &Elem : E.Elems) {
      std::optional<VType> ElemTy = checkExpr(*Elem, nullptr, Uses);
      if (!ElemTy)
        return std::nullopt;
      if (First) {
        Out = *ElemTy;
        First = false;
        continue;
      }
      if (!(ElemTy->Scalar == Out.Scalar)) {
        Diags.error(Elem->Loc,
                    "tuple mixes atom types " + Out.Scalar.str() + " and " +
                        ElemTy->Scalar.str());
        return std::nullopt;
      }
      Out.Len += ElemTy->Len;
    }
    if (First) {
      Diags.error(E.Loc, "empty tuple");
      return std::nullopt;
    }
    return Out;
  }

  case Expr::Kind::Not: {
    std::optional<VType> Ty = checkExpr(*E.Base, Expected, Uses);
    if (!Ty)
      return std::nullopt;
    if (instanceError(OpClass::Logic, *Ty, E.Loc))
      return std::nullopt;
    return Ty;
  }

  case Expr::Kind::Binop: {
    const Expr *L = E.Base.get(), *R = E.Rhs.get();
    std::optional<VType> LTy, RTy;
    // Literals take their type from the sibling operand.
    if (L->K == Expr::Kind::IntLit && R->K != Expr::Kind::IntLit) {
      RTy = checkExpr(*R, Expected, Uses);
      if (!RTy)
        return std::nullopt;
      LTy = checkExpr(*L, &*RTy, Uses);
    } else {
      LTy = checkExpr(*L, Expected, Uses);
      if (!LTy)
        return std::nullopt;
      RTy = checkExpr(*R, &*LTy, Uses);
    }
    if (!LTy || !RTy)
      return std::nullopt;
    if (!(*LTy == *RTy)) {
      Diags.error(E.Loc, std::string("operand types of '") +
                             binopName(E.Binop) + "' differ: " + LTy->str() +
                             " vs " + RTy->str());
      return std::nullopt;
    }
    OpClass C = (E.Binop == BinopKind::Add || E.Binop == BinopKind::Sub ||
                 E.Binop == BinopKind::Mul)
                    ? OpClass::Arith
                    : OpClass::Logic;
    if (instanceError(C, *LTy, E.Loc))
      return std::nullopt;
    return LTy;
  }

  case Expr::Kind::Shift: {
    std::optional<VType> Ty = checkExpr(*E.Base, Expected, Uses);
    if (!Ty)
      return std::nullopt;
    int64_t Amount;
    if (!evalConst(*E.Amount, Amount))
      return std::nullopt;
    if (Amount < 0) {
      Diags.error(E.Loc, "negative shift amount");
      return std::nullopt;
    }
    if (instanceError(OpClass::Shift, *Ty, E.Loc))
      return std::nullopt;
    return Ty;
  }

  case Expr::Kind::Shuffle: {
    std::optional<VType> Ty = checkExpr(*E.Base, Expected, Uses);
    if (!Ty)
      return std::nullopt;
    unsigned Positions = Ty->Len > 1 ? Ty->Len : Ty->wordBits();
    if (Ty->Len == 1) {
      // Atom-level shuffle: requires a horizontal atom with a shuffle
      // instruction (Table 1, Shift(uH...) rows).
      if (Ty->wordBits() == 1) {
        Diags.error(E.Loc, "cannot shuffle a single bit");
        return std::nullopt;
      }
      if (Ty->Scalar.direction() != Dir::Horiz) {
        Diags.error(E.Loc,
                    "Shuffle on atom type " + Ty->Scalar.str() +
                        " requires horizontal slicing (vertical elements "
                        "cannot be bit-permuted in one instruction)");
        return std::nullopt;
      }
      if (!Target.supportsHorizontalShift(Ty->wordBits())) {
        Diags.error(E.Loc, "no shuffle instance at " + Ty->Scalar.str() +
                               " on " + Target.Name);
        return std::nullopt;
      }
    }
    if (E.Pattern.size() != Positions) {
      Diags.error(E.Loc, "Shuffle pattern has " +
                             std::to_string(E.Pattern.size()) +
                             " entries, expected " +
                             std::to_string(Positions));
      return std::nullopt;
    }
    for (unsigned P : E.Pattern)
      if (P >= Positions) {
        Diags.error(E.Loc, "Shuffle pattern entry " + std::to_string(P) +
                               " out of range");
        return std::nullopt;
      }
    return Ty;
  }

  case Expr::Kind::Call: {
    auto It = Sigs.find(E.Name);
    if (It == Sigs.end()) {
      Diags.error(E.Loc, "call to unknown (or later-defined) node '" +
                             E.Name + "'");
      return std::nullopt;
    }
    const NodeSig &Sig = It->second;
    if (E.Elems.size() != Sig.Params.size()) {
      Diags.error(E.Loc, "'" + E.Name + "' expects " +
                             std::to_string(Sig.Params.size()) +
                             " arguments, got " +
                             std::to_string(E.Elems.size()));
      return std::nullopt;
    }
    for (size_t I = 0; I < E.Elems.size(); ++I) {
      if (E.Elems[I]->K == Expr::Kind::IntLit) {
        Diags.error(E.Elems[I]->Loc,
                    "literal arguments are not supported; bind the "
                    "constant to a variable first");
        return std::nullopt;
      }
      std::optional<VType> ArgTy =
          checkExpr(*E.Elems[I], &Sig.Params[I], Uses);
      if (!ArgTy)
        return std::nullopt;
      if (!(*ArgTy == Sig.Params[I])) {
        Diags.error(E.Elems[I]->Loc,
                    "argument " + std::to_string(I + 1) + " of '" + E.Name +
                        "' has type " + ArgTy->str() + ", expected " +
                        Sig.Params[I].str());
        return std::nullopt;
      }
    }
    VType Out = Sig.Returns[0];
    for (size_t I = 1; I < Sig.Returns.size(); ++I) {
      assert(Sig.Returns[I].Scalar == Out.Scalar &&
             "mixed-scalar returns rejected at declaration");
      Out.Len += Sig.Returns[I].Len;
    }
    return Out;
  }
  }
  return std::nullopt;
}

bool NodeChecker::resolveLValue(const LValue &L, ElemRange &Out,
                                VType &Ty) {
  auto It = VarIds.find(L.Name);
  if (It == VarIds.end()) {
    Diags.error(L.Loc, "unknown variable '" + L.Name + "'");
    return false;
  }
  if (It->second < NumParams) {
    Diags.error(L.Loc, "cannot define parameter '" + L.Name + "'");
    return false;
  }
  Type Cur = Decls[It->second]->Ty;
  Out.VarId = It->second;
  Out.Offset = 0;
  Out.Loc = L.Loc;
  for (const LValue::Access &A : L.Accesses) {
    if (!Cur.isVector()) {
      Diags.error(L.Loc, "indexing a non-vector on the left-hand side");
      return false;
    }
    int64_t Lo, Hi;
    if (!evalConst(A.Index, Lo))
      return false;
    Hi = Lo;
    if (A.IsRange && !evalConst(A.Hi, Hi))
      return false;
    if (Lo < 0 || Hi < Lo || Hi >= static_cast<int64_t>(Cur.length())) {
      Diags.error(L.Loc, "left-hand side index out of bounds for " +
                             Cur.str());
      return false;
    }
    unsigned ElemLen = Cur.elementType().flattenedLength();
    Out.Offset += static_cast<unsigned>(Lo) * ElemLen;
    Cur = A.IsRange ? Type::vector(Cur.elementType(),
                                   static_cast<unsigned>(Hi - Lo + 1))
                    : Cur.elementType();
  }
  Out.Len = Cur.flattenedLength();
  Ty = distill(Cur);
  return true;
}

bool NodeChecker::checkEquation(Equation &Eqn, std::vector<ElemRange> &Defs,
                                std::vector<ElemRange> &Uses) {
  assert(Eqn.K == Equation::Kind::Assign && "foralls must be expanded");
  VType Total;
  bool First = true;
  for (const LValue &L : Eqn.Lhs) {
    ElemRange Range;
    VType Ty;
    if (!resolveLValue(L, Range, Ty))
      return false;
    Defs.push_back(Range);
    if (First) {
      Total = Ty;
      First = false;
      continue;
    }
    if (!(Ty.Scalar == Total.Scalar)) {
      Diags.error(L.Loc, "left-hand side mixes atom types");
      return false;
    }
    Total.Len += Ty.Len;
  }
  std::optional<VType> RhsTy = checkExpr(*Eqn.Rhs, &Total, Uses);
  if (!RhsTy)
    return false;
  if (!(*RhsTy == Total)) {
    Diags.error(Eqn.Loc, "equation type mismatch: left-hand side is " +
                             Total.str() + ", right-hand side is " +
                             RhsTy->str());
    return false;
  }
  return true;
}

bool NodeChecker::run() {
  if (!declareVars())
    return false;

  // Per-variable, per-element defining equation: -1 parameter, -2 none.
  std::vector<std::vector<int>> DefOf(Decls.size());
  for (unsigned V = 0; V < Decls.size(); ++V)
    DefOf[V].assign(Decls[V]->Ty.flattenedLength(),
                    V < NumParams ? -1 : -2);

  std::vector<std::vector<ElemRange>> EqnDefs(N.Eqns.size());
  std::vector<std::vector<ElemRange>> EqnUses(N.Eqns.size());

  for (unsigned E = 0; E < N.Eqns.size(); ++E) {
    if (!checkEquation(N.Eqns[E], EqnDefs[E], EqnUses[E]))
      return false;
    for (const ElemRange &D : EqnDefs[E])
      for (unsigned I = 0; I < D.Len; ++I) {
        int &Slot = DefOf[D.VarId][D.Offset + I];
        if (Slot != -2) {
          Diags.error(D.Loc, "element " + std::to_string(D.Offset + I) +
                                 " of '" + Decls[D.VarId]->Name +
                                 "' is defined more than once");
          return false;
        }
        Slot = static_cast<int>(E);
      }
  }

  // Every element read must be defined; returns must be fully defined.
  for (unsigned E = 0; E < N.Eqns.size(); ++E)
    for (const ElemRange &U : EqnUses[E])
      for (unsigned I = 0; I < U.Len; ++I)
        if (DefOf[U.VarId][U.Offset + I] == -2) {
          Diags.error(U.Loc, "element " + std::to_string(U.Offset + I) +
                                 " of '" + Decls[U.VarId]->Name +
                                 "' is read but never defined");
          return false;
        }
  for (unsigned V = NumParams;
       V < NumParams + N.Returns.size() && V < Decls.size(); ++V)
    for (unsigned I = 0; I < DefOf[V].size(); ++I)
      if (DefOf[V][I] == -2) {
        Diags.error(Decls[V]->Loc,
                    "return value '" + Decls[V]->Name +
                        "' is not fully defined (element " +
                        std::to_string(I) + " missing)");
        return false;
      }

  // Well-foundedness: topologically sort the equation system (stable on
  // the source order) — the "scheduling" of synchronous-dataflow
  // front-ends. A cycle means a feedback loop, which Usuba forbids.
  std::vector<std::set<unsigned>> Succs(N.Eqns.size());
  std::vector<unsigned> InDegree(N.Eqns.size(), 0);
  for (unsigned E = 0; E < N.Eqns.size(); ++E)
    for (const ElemRange &U : EqnUses[E])
      for (unsigned I = 0; I < U.Len; ++I) {
        int Def = DefOf[U.VarId][U.Offset + I];
        if (Def >= 0 && static_cast<unsigned>(Def) != E &&
            Succs[Def].insert(E).second)
          ++InDegree[E];
        if (Def >= 0 && static_cast<unsigned>(Def) == E) {
          Diags.error(N.Eqns[E].Loc,
                      "equation depends on its own result (feedback loops "
                      "are not expressible in Usuba)");
          return false;
        }
      }
  std::set<unsigned> Ready;
  for (unsigned E = 0; E < N.Eqns.size(); ++E)
    if (InDegree[E] == 0)
      Ready.insert(E);
  std::vector<unsigned> Order;
  Order.reserve(N.Eqns.size());
  while (!Ready.empty()) {
    unsigned E = *Ready.begin();
    Ready.erase(Ready.begin());
    Order.push_back(E);
    for (unsigned S : Succs[E])
      if (--InDegree[S] == 0)
        Ready.insert(S);
  }
  if (Order.size() != N.Eqns.size()) {
    Diags.error(N.Loc, "the equations of '" + N.Name +
                           "' contain a dependency cycle (feedback loops "
                           "are not expressible in Usuba)");
    return false;
  }
  std::vector<Equation> Sorted;
  Sorted.reserve(N.Eqns.size());
  for (unsigned E : Order)
    Sorted.push_back(std::move(N.Eqns[E]));
  N.Eqns = std::move(Sorted);
  return true;
}

} // namespace

bool usuba::checkProgram(Program &Prog, const Arch &Target,
                         DiagnosticEngine &Diags) {
  std::map<std::string, NodeSig> Sigs;
  std::set<std::string> Names;
  for (Node &N : Prog.Nodes) {
    if (N.K != Node::Kind::Fun) {
      Diags.error(N.Loc, "tables must be elaborated before type checking");
      return false;
    }
    if (!Names.insert(N.Name).second) {
      Diags.error(N.Loc, "redefinition of node '" + N.Name + "'");
      return false;
    }
    NodeChecker Checker(N, Sigs, Target, Diags);
    if (!Checker.run())
      return false;

    NodeSig Sig;
    for (const VarDecl &P : N.Params)
      Sig.Params.push_back(distill(P.Ty));
    for (const VarDecl &R : N.Returns)
      Sig.Returns.push_back(distill(R.Ty));
    // Mixed-scalar returns would make call-result typing ambiguous.
    for (size_t I = 1; I < Sig.Returns.size(); ++I)
      if (!(Sig.Returns[I].Scalar == Sig.Returns[0].Scalar)) {
        Diags.error(N.Loc,
                    "node '" + N.Name + "' mixes atom types in returns");
        return false;
      }
    if (Sig.Returns.empty()) {
      Diags.error(N.Loc, "node '" + N.Name + "' returns nothing");
      return false;
    }
    Sigs.emplace(N.Name, std::move(Sig));
  }
  return true;
}

bool usuba::slicingSupported(const Program &Prog, Dir Direction,
                             unsigned MBits, bool Flatten,
                             const Arch &Target, std::string *WhyNot) {
  Program Copy = Prog.clone();
  DiagnosticEngine Diags;
  bool Ok = expandProgram(Copy, Diags) && elaborateTables(Copy, Diags);
  if (Ok) {
    monomorphizeProgram(Copy, Direction, MBits);
    if (Flatten)
      flattenProgram(Copy);
    Ok = checkProgram(Copy, Target, Diags);
  }
  if (!Ok && WhyNot && !Diags.diagnostics().empty())
    *WhyNot = Diags.diagnostics().front().Message;
  return Ok;
}
