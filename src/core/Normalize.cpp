//===- Normalize.cpp - Lowering the AST to Usuba0 -------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Normalize.h"

#include "support/BitUtils.h"
#include "support/Diagnostics.h"

#include <map>

using namespace usuba;
using namespace usuba::ast;

namespace {

/// Lowers one node. The program is type-correct, so this code asserts
/// instead of diagnosing.
class NodeNormalizer {
public:
  NodeNormalizer(const Node &N, U0Program &Prog,
                 const std::map<std::string, unsigned> &FuncIds,
                 const std::map<std::string, Type> &CalleeScalars,
                 bool RoundBarriers)
      : N(N), Prog(Prog), FuncIds(FuncIds), CalleeScalars(CalleeScalars),
        RoundBarriers(RoundBarriers) {}

  U0Function run();

private:
  struct VarInfo {
    unsigned BaseReg;
    unsigned Len;
    const Type *Ty;
  };

  /// The registers and scalar type an expression evaluates to.
  struct Value {
    std::vector<unsigned> Regs;
    Type Scalar = Type::nat();
  };

  VarInfo &varInfo(const std::string &Name) {
    auto It = Vars.find(Name);
    USUBA_ICE_CHECK(It != Vars.end(),
                    "unknown variable '" + Name + "' after type checking");
    return It->second;
  }

  int64_t evalConst(const ConstExpr &CE) const {
    bool Ok = true;
    std::map<std::string, int64_t> Empty;
    int64_t V = CE.evaluate(Empty, Ok);
    USUBA_ICE_CHECK(Ok, "const evaluation failed after type checking");
    return V;
  }

  /// Resolves a Var/Index/Range chain to (structured type, base register,
  /// length in atoms).
  Type resolveAccess(const Expr &E, unsigned &Reg, unsigned &Len);

  /// Computes (without emitting anything) the atom count and scalar type
  /// \p E evaluates to.
  std::pair<unsigned, Type> measure(const Expr &E,
                                    const Type *ExpectedScalar,
                                    unsigned ExpectedLen);

  /// Emits \p E, returning its registers (existing registers for wiring
  /// expressions, fresh temporaries for computations).
  Value emitExpr(const Expr &E, const Type *ExpectedScalar,
                 unsigned ExpectedLen);

  /// Emits \p E directly into \p Targets (used for equation right-hand
  /// sides, avoiding temporary-plus-Mov for computations).
  void emitExprInto(const Expr &E, const std::vector<unsigned> &Targets,
                    const Type &ExpectedScalar);

  /// Emits the instruction(s) of a computing expression with given
  /// destination registers. Non-computing expressions return false.
  bool emitComputation(const Expr &E, const std::vector<unsigned> &Dests,
                       const Type &ExpectedScalar);

  unsigned zeroReg(unsigned MBits);
  unsigned freshReg() { return F.addReg(); }
  void emit(U0Instr I) {
    // Provenance: every instruction descends from the equation being
    // normalized, so stamp its location unless a sub-emitter already did.
    if (!I.Loc.isValid())
      I.Loc = CurLoc;
    F.Instrs.push_back(std::move(I));
  }

  /// Computes the register renaming of a vector shift/rotate/shuffle.
  std::vector<unsigned> renameVector(const std::vector<unsigned> &Src,
                                     ShiftKind K, int64_t Amount,
                                     unsigned MBits);

  const Node &N;
  U0Program &Prog;
  const std::map<std::string, unsigned> &FuncIds;
  const std::map<std::string, Type> &CalleeScalars;
  bool RoundBarriers;

  U0Function F;
  std::map<std::string, VarInfo> Vars;
  int ZeroReg = -1;
  unsigned ZeroBits = 0;
  /// Location of the equation currently being normalized; stamped onto
  /// every emitted instruction.
  SourceLoc CurLoc;
};

Type NodeNormalizer::resolveAccess(const Expr &E, unsigned &Reg,
                                   unsigned &Len) {
  switch (E.K) {
  case Expr::Kind::Var: {
    VarInfo &Info = varInfo(E.Name);
    Reg = Info.BaseReg;
    Len = Info.Len;
    return *Info.Ty;
  }
  case Expr::Kind::Index: {
    Type BaseTy = resolveAccess(*E.Base, Reg, Len);
    USUBA_ICE_CHECK(BaseTy.isVector(), "indexing non-vector after checking");
    unsigned ElemLen = BaseTy.elementType().flattenedLength();
    Reg += static_cast<unsigned>(evalConst(*E.Index0)) * ElemLen;
    Len = ElemLen;
    return BaseTy.elementType();
  }
  case Expr::Kind::Range: {
    Type BaseTy = resolveAccess(*E.Base, Reg, Len);
    USUBA_ICE_CHECK(BaseTy.isVector(), "slicing non-vector after checking");
    unsigned ElemLen = BaseTy.elementType().flattenedLength();
    int64_t Lo = evalConst(*E.Index0);
    int64_t Hi = evalConst(*E.Index1);
    Reg += static_cast<unsigned>(Lo) * ElemLen;
    Len = static_cast<unsigned>(Hi - Lo + 1) * ElemLen;
    return Type::vector(BaseTy.elementType(),
                        static_cast<unsigned>(Hi - Lo + 1));
  }
  default:
    USUBA_ICE("expression is not an access chain");
  }
}

unsigned NodeNormalizer::zeroReg(unsigned MBits) {
  if (ZeroReg >= 0 && ZeroBits == MBits)
    return static_cast<unsigned>(ZeroReg);
  unsigned R = freshReg();
  emit(U0Instr::constant(R, 0));
  ZeroReg = static_cast<int>(R);
  ZeroBits = MBits;
  return R;
}

std::vector<unsigned>
NodeNormalizer::renameVector(const std::vector<unsigned> &Src, ShiftKind K,
                             int64_t Amount, unsigned MBits) {
  // Vector semantics with index 0 the most significant position:
  //   <<  k : out[i] = in[i+k] (zero past the end)
  //   >>  k : out[i] = in[i-k] (zero before the start)
  //   <<< k : out[i] = in[(i+k) mod n]
  //   >>> k : out[i] = in[(i-k) mod n]
  int64_t Count = static_cast<int64_t>(Src.size());
  std::vector<unsigned> Out(Src.size());
  for (int64_t I = 0; I < Count; ++I) {
    int64_t From = I;
    switch (K) {
    case ShiftKind::Lshift:
      From = I + Amount;
      break;
    case ShiftKind::Rshift:
      From = I - Amount;
      break;
    case ShiftKind::Lrotate:
      From = ((I + Amount) % Count + Count) % Count;
      break;
    case ShiftKind::Rrotate:
      From = ((I - Amount) % Count + Count) % Count;
      break;
    }
    Out[I] = (From >= 0 && From < Count)
                 ? Src[From]
                 : zeroReg(MBits);
  }
  return Out;
}

/// Builds the element-permutation pattern of an atom-level horizontal
/// shift/rotate (positions are vector indices, 0 = MSB; 0xFF = zero fill).
static std::vector<uint8_t> atomShiftPattern(ShiftKind K, int64_t Amount,
                                             unsigned MBits) {
  std::vector<uint8_t> Pattern(MBits);
  int64_t Count = MBits;
  for (int64_t J = 0; J < Count; ++J) {
    int64_t From = J;
    switch (K) {
    case ShiftKind::Lshift:
      From = J + Amount;
      break;
    case ShiftKind::Rshift:
      From = J - Amount;
      break;
    case ShiftKind::Lrotate:
      From = ((J + Amount) % Count + Count) % Count;
      break;
    case ShiftKind::Rrotate:
      From = ((J - Amount) % Count + Count) % Count;
      break;
    }
    Pattern[J] = (From >= 0 && From < Count) ? static_cast<uint8_t>(From)
                                             : uint8_t{0xFF};
  }
  return Pattern;
}

static U0Op binopOpcode(BinopKind K) {
  switch (K) {
  case BinopKind::And:
    return U0Op::And;
  case BinopKind::Or:
    return U0Op::Or;
  case BinopKind::Xor:
    return U0Op::Xor;
  case BinopKind::Andn:
    return U0Op::Andn;
  case BinopKind::Add:
    return U0Op::Add;
  case BinopKind::Sub:
    return U0Op::Sub;
  case BinopKind::Mul:
    return U0Op::Mul;
  }
  return U0Op::And;
}

static U0Op shiftOpcode(ShiftKind K) {
  switch (K) {
  case ShiftKind::Lshift:
    return U0Op::Lshift;
  case ShiftKind::Rshift:
    return U0Op::Rshift;
  case ShiftKind::Lrotate:
    return U0Op::Lrotate;
  case ShiftKind::Rrotate:
    return U0Op::Rrotate;
  }
  return U0Op::Lshift;
}

bool NodeNormalizer::emitComputation(const Expr &E,
                                     const std::vector<unsigned> &Dests,
                                     const Type &ExpectedScalar) {
  switch (E.K) {
  case Expr::Kind::IntLit: {
    // Literal over L atoms of m bits each: atom 0 receives the most
    // significant m-bit chunk.
    unsigned MBits = ExpectedScalar.wordSize().Bits;
    unsigned L = static_cast<unsigned>(Dests.size());
    for (unsigned I = 0; I < L; ++I) {
      unsigned Low = (L - 1 - I) * MBits;
      uint64_t Chunk = Low >= 64 ? 0 : (E.IntValue >> Low) & lowBitMask(MBits);
      emit(U0Instr::constant(Dests[I], Chunk));
    }
    return true;
  }
  case Expr::Kind::Not: {
    Value Operand = emitExpr(*E.Base, &ExpectedScalar,
                             static_cast<unsigned>(Dests.size()));
    USUBA_ICE_CHECK(Operand.Regs.size() == Dests.size(),
                    "arity after checking");
    for (size_t I = 0; I < Dests.size(); ++I)
      emit(U0Instr::unary(U0Op::Not, Dests[I], Operand.Regs[I]));
    return true;
  }
  case Expr::Kind::Binop: {
    unsigned L = static_cast<unsigned>(Dests.size());
    Value Lhs, Rhs;
    if (E.Base->K == Expr::Kind::IntLit && E.Rhs->K != Expr::Kind::IntLit) {
      Rhs = emitExpr(*E.Rhs, &ExpectedScalar, L);
      Lhs = emitExpr(*E.Base, &Rhs.Scalar, L);
    } else {
      Lhs = emitExpr(*E.Base, &ExpectedScalar, L);
      Rhs = emitExpr(*E.Rhs, &Lhs.Scalar, L);
    }
    USUBA_ICE_CHECK(Lhs.Regs.size() == Dests.size() &&
                        Rhs.Regs.size() == Dests.size(),
                    "binop arity after checking");
    U0Op Op = binopOpcode(E.Binop);
    for (size_t I = 0; I < Dests.size(); ++I)
      emit(U0Instr::binary(Op, Dests[I], Lhs.Regs[I], Rhs.Regs[I]));
    return true;
  }
  case Expr::Kind::Shift: {
    Value Operand = emitExpr(*E.Base, &ExpectedScalar,
                             static_cast<unsigned>(Dests.size()));
    int64_t Amount = evalConst(*E.Amount);
    unsigned MBits = Operand.Scalar.wordSize().Bits;
    if (Operand.Regs.size() > 1) {
      // Vector shift: pure renaming (Table 1: 0 instructions) — but we
      // were asked to produce specific destination registers, so Movs
      // carry the renaming; copy propagation erases them.
      std::vector<unsigned> Renamed =
          renameVector(Operand.Regs, E.Shift, Amount, MBits);
      for (size_t I = 0; I < Dests.size(); ++I)
        emit(U0Instr::unary(U0Op::Mov, Dests[I], Renamed[I]));
      return true;
    }
    // Atom shift.
    USUBA_ICE_CHECK(MBits > 1, "bit shifts rejected by checking");
    if (Operand.Scalar.direction() == Dir::Horiz) {
      emit(U0Instr::shuffle(
          Dests[0], Operand.Regs[0],
          atomShiftPattern(E.Shift, Amount, MBits)));
      return true;
    }
    emit(U0Instr::shift(shiftOpcode(E.Shift), Dests[0], Operand.Regs[0],
                        static_cast<unsigned>(
                            E.Shift == ShiftKind::Lrotate ||
                                    E.Shift == ShiftKind::Rrotate
                                ? Amount % MBits
                                : Amount)));
    return true;
  }
  case Expr::Kind::Shuffle: {
    Value Operand = emitExpr(*E.Base, &ExpectedScalar,
                             static_cast<unsigned>(Dests.size()));
    if (Operand.Regs.size() > 1) {
      // Vector shuffle: renaming.
      for (size_t I = 0; I < Dests.size(); ++I)
        emit(U0Instr::unary(U0Op::Mov, Dests[I],
                            Operand.Regs[E.Pattern[I]]));
      return true;
    }
    std::vector<uint8_t> Pattern(E.Pattern.begin(), E.Pattern.end());
    emit(U0Instr::shuffle(Dests[0], Operand.Regs[0], std::move(Pattern)));
    return true;
  }
  case Expr::Kind::Call: {
    auto It = FuncIds.find(E.Name);
    USUBA_ICE_CHECK(It != FuncIds.end(),
                    "unknown callee '" + E.Name + "' after checking");
    const U0Function &Callee = Prog.Funcs[It->second];
    std::vector<unsigned> Args;
    // Arguments match callee parameters positionally; emitExpr flattens.
    unsigned ParamOffset = 0;
    for (const auto &Arg : E.Elems) {
      // The expected scalar for literals comes from the argument itself
      // in the common case; the checker has already validated types.
      Value V = emitExpr(*Arg, &ExpectedScalar, 0);
      Args.insert(Args.end(), V.Regs.begin(), V.Regs.end());
      ParamOffset += static_cast<unsigned>(V.Regs.size());
    }
    USUBA_ICE_CHECK(Args.size() == Callee.NumInputs,
                    "call arity after checking");
    (void)ParamOffset;
    emit(U0Instr::call(It->second, Dests, std::move(Args)));
    return true;
  }
  default:
    return false;
  }
}

std::pair<unsigned, Type> NodeNormalizer::measure(const Expr &E,
                                                  const Type *ExpectedScalar,
                                                  unsigned ExpectedLen) {
  switch (E.K) {
  case Expr::Kind::Var:
  case Expr::Kind::Index:
  case Expr::Kind::Range: {
    unsigned Reg = 0, Len = 0;
    Type Ty = resolveAccess(E, Reg, Len);
    return {Len, Ty.scalarType()};
  }
  case Expr::Kind::IntLit:
    USUBA_ICE_CHECK(ExpectedScalar && ExpectedLen > 0,
                    "literal context after checking");
    return {ExpectedLen, *ExpectedScalar};
  case Expr::Kind::Tuple: {
    unsigned Total = 0;
    Type Scalar = Type::nat();
    for (const auto &Elem : E.Elems) {
      auto [Len, S] = measure(*Elem, ExpectedScalar, 0);
      Total += Len;
      Scalar = S;
    }
    return {Total, Scalar};
  }
  case Expr::Kind::Not:
  case Expr::Kind::Shift:
  case Expr::Kind::Shuffle:
    return measure(*E.Base, ExpectedScalar, ExpectedLen);
  case Expr::Kind::Binop:
    if (E.Base->K == Expr::Kind::IntLit && E.Rhs->K != Expr::Kind::IntLit)
      return measure(*E.Rhs, ExpectedScalar, ExpectedLen);
    return measure(*E.Base, ExpectedScalar, ExpectedLen);
  case Expr::Kind::Call: {
    auto It = FuncIds.find(E.Name);
    USUBA_ICE_CHECK(It != FuncIds.end(),
                    "unknown callee '" + E.Name + "' after checking");
    return {static_cast<unsigned>(Prog.Funcs[It->second].Outputs.size()),
            CalleeScalars.at(E.Name)};
  }
  }
  return {0, Type::nat()};
}

NodeNormalizer::Value NodeNormalizer::emitExpr(const Expr &E,
                                               const Type *ExpectedScalar,
                                               unsigned ExpectedLen) {
  switch (E.K) {
  case Expr::Kind::Var:
  case Expr::Kind::Index:
  case Expr::Kind::Range: {
    unsigned Reg = 0, Len = 0;
    Type Ty = resolveAccess(E, Reg, Len);
    Value V;
    V.Scalar = Ty.scalarType();
    V.Regs.resize(Len);
    for (unsigned I = 0; I < Len; ++I)
      V.Regs[I] = Reg + I;
    return V;
  }
  case Expr::Kind::Tuple: {
    Value Out;
    for (const auto &Elem : E.Elems) {
      Value V = emitExpr(*Elem, ExpectedScalar, 0);
      Out.Scalar = V.Scalar;
      Out.Regs.insert(Out.Regs.end(), V.Regs.begin(), V.Regs.end());
    }
    return Out;
  }
  default: {
    // A computation: measure its shape, allocate temporaries, emit.
    Value Out;
    auto [Len, Scalar] = measure(E, ExpectedScalar, ExpectedLen);
    Out.Scalar = Scalar;
    Out.Regs.resize(Len);
    for (unsigned I = 0; I < Len; ++I)
      Out.Regs[I] = freshReg();
    bool Emitted = emitComputation(E, Out.Regs, Out.Scalar);
    USUBA_ICE_CHECK(Emitted, "expression kind not handled");
    return Out;
  }
  }
}

void NodeNormalizer::emitExprInto(const Expr &E,
                                  const std::vector<unsigned> &Targets,
                                  const Type &ExpectedScalar) {
  if (emitComputation(E, Targets, ExpectedScalar))
    return;
  // Wiring expression: copy sources into targets.
  Value V = emitExpr(E, &ExpectedScalar,
                     static_cast<unsigned>(Targets.size()));
  USUBA_ICE_CHECK(V.Regs.size() == Targets.size(),
                  "wiring arity after checking");
  for (size_t I = 0; I < Targets.size(); ++I)
    emit(U0Instr::unary(U0Op::Mov, Targets[I], V.Regs[I]));
}

U0Function NodeNormalizer::run() {
  F.Name = N.Name;

  // Register allocation: parameters first (the input ABI), then returns,
  // then locals.
  for (const auto *List : {&N.Params, &N.Returns, &N.Vars})
    for (const VarDecl &D : *List) {
      unsigned Len = D.Ty.flattenedLength();
      unsigned Base = F.NumRegs;
      F.NumRegs += Len;
      Vars.emplace(D.Name, VarInfo{Base, Len, &D.Ty});
      if (List == &N.Params)
        F.NumInputs += Len;
    }
  for (const VarDecl &R : N.Returns) {
    VarInfo &Info = varInfo(R.Name);
    for (unsigned I = 0; I < Info.Len; ++I)
      F.Outputs.push_back(Info.BaseReg + I);
  }

  unsigned LastGroup = 0;
  bool First = true;
  for (const Equation &Eqn : N.Eqns) {
    USUBA_ICE_CHECK(Eqn.K == Equation::Kind::Assign,
                    "foralls must be expanded");
    CurLoc = Eqn.Loc;
    if (RoundBarriers && !First && Eqn.IterGroup != LastGroup)
      emit(U0Instr::barrier());
    First = false;
    LastGroup = Eqn.IterGroup;

    std::vector<unsigned> Targets;
    Type Scalar = Type::nat();
    for (const LValue &L : Eqn.Lhs) {
      VarInfo &Info = varInfo(L.Name);
      Type Cur = *Info.Ty;
      unsigned Offset = 0;
      unsigned Len = Info.Len;
      for (const LValue::Access &A : L.Accesses) {
        USUBA_ICE_CHECK(Cur.isVector(), "lvalue access after checking");
        unsigned ElemLen = Cur.elementType().flattenedLength();
        int64_t Lo = evalConst(A.Index);
        int64_t Hi = A.IsRange ? evalConst(A.Hi) : Lo;
        Offset += static_cast<unsigned>(Lo) * ElemLen;
        Len = static_cast<unsigned>(Hi - Lo + 1) * ElemLen;
        Cur = A.IsRange
                  ? Type::vector(Cur.elementType(),
                                 static_cast<unsigned>(Hi - Lo + 1))
                  : Cur.elementType();
      }
      Scalar = Cur.scalarType();
      for (unsigned I = 0; I < Len; ++I)
        Targets.push_back(Info.BaseReg + Offset + I);
    }
    emitExprInto(*Eqn.Rhs, Targets, Scalar);
  }
  return std::move(F);
}

} // namespace

U0Program usuba::normalizeProgram(const ast::Program &Prog, Dir Direction,
                                  unsigned MBits, const Arch &Target,
                                  bool RoundBarriers) {
  U0Program Out;
  Out.Direction = Direction;
  Out.MBits = MBits;
  Out.Target = &Target;

  std::map<std::string, unsigned> FuncIds;
  std::map<std::string, Type> CalleeScalars;
  for (const Node &N : Prog.Nodes) {
    USUBA_ICE_CHECK(N.K == ast::Node::Kind::Fun,
                    "tables must be elaborated");
    NodeNormalizer Norm(N, Out, FuncIds, CalleeScalars, RoundBarriers);
    Out.Funcs.push_back(Norm.run());
    FuncIds.emplace(N.Name, static_cast<unsigned>(Out.Funcs.size()) - 1);
    USUBA_ICE_CHECK(!N.Returns.empty(), "checked nodes return something");
    CalleeScalars.emplace(N.Name, N.Returns[0].Ty.scalarType());
  }
  return Out;
}
