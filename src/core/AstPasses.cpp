//===- AstPasses.cpp - Front-end AST transformations ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/AstPasses.h"

#include "circuits/Circuit.h"
#include "support/BitUtils.h"
#include "support/Diagnostics.h"
#include "support/Remarks.h"

#include <map>
#include <set>

using namespace usuba;
using namespace usuba::ast;

//===----------------------------------------------------------------------===//
// forall expansion and := desugaring
//===----------------------------------------------------------------------===//

namespace {

/// Substitutes the closed integer \p Value for variable \p Name inside a
/// compile-time expression tree.
void substConst(ConstExpr &E, const std::string &Name, int64_t Value) {
  switch (E.K) {
  case ConstExpr::Kind::Int:
    return;
  case ConstExpr::Kind::Var:
    if (E.Name == Name) {
      E.K = ConstExpr::Kind::Int;
      E.Value = Value;
      E.Name.clear();
    }
    return;
  default:
    substConst(*E.Lhs, Name, Value);
    substConst(*E.Rhs, Name, Value);
    return;
  }
}

void substExpr(Expr &E, const std::string &Name, int64_t Value) {
  if (E.Base)
    substExpr(*E.Base, Name, Value);
  if (E.Rhs)
    substExpr(*E.Rhs, Name, Value);
  if (E.Index0)
    substConst(*E.Index0, Name, Value);
  if (E.Index1)
    substConst(*E.Index1, Name, Value);
  if (E.Amount)
    substConst(*E.Amount, Name, Value);
  for (auto &Elem : E.Elems)
    substExpr(*Elem, Name, Value);
}

void substEquation(Equation &Eqn, const std::string &Name, int64_t Value) {
  if (Eqn.K == Equation::Kind::ForAll) {
    substConst(Eqn.Lo, Name, Value);
    substConst(Eqn.Hi, Name, Value);
    // The inner index shadows an identically named outer index.
    if (Eqn.IndexName == Name)
      return;
    for (Equation &B : Eqn.Body)
      substEquation(B, Name, Value);
    return;
  }
  for (LValue &L : Eqn.Lhs)
    for (LValue::Access &A : L.Accesses) {
      substConst(A.Index, Name, Value);
      if (A.IsRange)
        substConst(A.Hi, Name, Value);
    }
  if (Eqn.Rhs)
    substExpr(*Eqn.Rhs, Name, Value);
}

/// Expands foralls in \p In, appending flat assignments to \p Out. Each
/// iteration of a *top-level* forall (Depth == 0) gets a fresh IterGroup
/// stamp, so the back-end can model not-unrolled loops as scheduling
/// barriers between rounds.
bool expandEquations(std::vector<Equation> &In, std::vector<Equation> &Out,
                     DiagnosticEngine &Diags, unsigned Depth,
                     unsigned &NextGroup, unsigned CurGroup,
                     size_t &Remaining) {
  for (Equation &Eqn : In) {
    if (Eqn.K == Equation::Kind::Assign) {
      if (Remaining == 0) {
        if (remarksEnabled())
          RemarkEngine::instance().record(
              Remark::missed("unroll", "UnrollBudget")
                  .at(Eqn.Loc)
                  .note("'forall' expansion exceeds the unrolling budget"));
        Diags.error(Eqn.Loc,
                    "'forall' expansion exceeds the unrolling budget");
        return false;
      }
      --Remaining;
      Eqn.IterGroup = CurGroup;
      Out.push_back(std::move(Eqn));
      continue;
    }
    bool Ok = true;
    std::map<std::string, int64_t> Empty;
    int64_t Lo = Eqn.Lo.evaluate(Empty, Ok);
    int64_t Hi = Eqn.Hi.evaluate(Empty, Ok);
    if (!Ok) {
      Diags.error(Eqn.Loc, "'forall' bounds cannot be evaluated (division "
                           "by zero or unbound index variable)");
      return false;
    }
    if (Hi < Lo) {
      Diags.error(Eqn.Loc, "'forall' range [" + std::to_string(Lo) + "," +
                               std::to_string(Hi) + "] is empty");
      return false;
    }
    // Cheap pre-check before cloning any bodies: even one equation per
    // iteration would blow the budget.
    if (static_cast<uint64_t>(Hi) - static_cast<uint64_t>(Lo) >=
        static_cast<uint64_t>(Remaining)) {
      if (remarksEnabled())
        RemarkEngine::instance().record(
            Remark::missed("unroll", "UnrollBudget")
                .at(Eqn.Loc)
                .note("'forall' range exceeds the unrolling budget")
                .arg("lo", Lo)
                .arg("hi", Hi)
                .arg("budget_remaining", Remaining));
      Diags.error(Eqn.Loc, "'forall' range [" + std::to_string(Lo) + "," +
                               std::to_string(Hi) +
                               "] exceeds the unrolling budget");
      return false;
    }
    for (int64_t I = Lo; I <= Hi; ++I) {
      std::vector<Equation> Iteration;
      for (const Equation &B : Eqn.Body) {
        Equation Copy = B.clone();
        substEquation(Copy, Eqn.IndexName, I);
        Iteration.push_back(std::move(Copy));
      }
      unsigned Group = Depth == 0 ? ++NextGroup : CurGroup;
      if (!expandEquations(Iteration, Out, Diags, Depth + 1, NextGroup,
                           Group, Remaining))
        return false;
    }
  }
  return true;
}

/// Rewrites variable reads according to the := version map.
void renameExprVars(Expr &E, const std::map<std::string, std::string> &Map) {
  if (E.K == Expr::Kind::Var || E.K == Expr::Kind::Call) {
    if (E.K == Expr::Kind::Var) {
      auto It = Map.find(E.Name);
      if (It != Map.end())
        E.Name = It->second;
    }
  }
  if (E.Base)
    renameExprVars(*E.Base, Map);
  if (E.Rhs)
    renameExprVars(*E.Rhs, Map);
  for (auto &Elem : E.Elems)
    renameExprVars(*Elem, Map);
}

const Type *lookupVarType(const Node &N, const std::string &Name) {
  for (const auto *List : {&N.Params, &N.Returns, &N.Vars})
    for (const VarDecl &D : *List)
      if (D.Name == Name)
        return &D.Ty;
  return nullptr;
}

/// Desugars `x := e` sequences in a node whose foralls have been expanded.
/// Every := target gets a fresh version; reads are redirected to the
/// current version, and return variables receive a final copy.
bool desugarImperative(Node &N, DiagnosticEngine &Diags) {
  std::map<std::string, std::string> Current; // var -> latest version
  std::map<std::string, unsigned> VersionCount;
  std::set<std::string> Defined; // defined by '=' (or parameters)
  for (const VarDecl &P : N.Params)
    Defined.insert(P.Name);
  std::vector<Equation> Out;

  for (Equation &Eqn : N.Eqns) {
    USUBA_ICE_CHECK(Eqn.K == Equation::Kind::Assign,
                    "foralls must be expanded");
    renameExprVars(*Eqn.Rhs, Current);
    if (!Eqn.Imperative) {
      // Reads in lvalue indices are compile-time and unaffected. A plain
      // equation on a versioned variable would break single assignment;
      // reject the mixture.
      for (LValue &L : Eqn.Lhs)
        if (Current.count(L.Name)) {
          Diags.error(L.Loc, "variable '" + L.Name +
                                 "' is updated with ':=' and cannot also "
                                 "be defined with '='");
          return false;
        }
      for (const LValue &L : Eqn.Lhs)
        Defined.insert(L.Name);
      Out.push_back(std::move(Eqn));
      continue;
    }

    LValue &Target = Eqn.Lhs[0];
    const Type *VarTyPtr = lookupVarType(N, Target.Name);
    if (!VarTyPtr) {
      Diags.error(Target.Loc,
                  "':=' target '" + Target.Name + "' is not declared");
      return false;
    }
    // Copy the type out: VarTyPtr aims into N.Vars, which the push_back
    // below may reallocate.
    const Type VarTy = *VarTyPtr;
    auto CurIt = Current.find(Target.Name);
    if (CurIt == Current.end() && Target.Accesses.empty() &&
        !Defined.count(Target.Name)) {
      // First whole-variable assignment of a yet-undefined variable:
      // a plain definition.
      Current[Target.Name] = Target.Name;
      Eqn.Imperative = false;
      Out.push_back(std::move(Eqn));
      continue;
    }
    std::string Old = CurIt == Current.end() ? Target.Name : CurIt->second;
    std::string Fresh = Target.Name + "__v" +
                        std::to_string(++VersionCount[Target.Name]);
    N.Vars.push_back({Fresh, VarTy, Target.Loc});
    Current[Target.Name] = Fresh;

    if (Target.Accesses.empty()) {
      Equation Def;
      Def.K = Equation::Kind::Assign;
      Def.Loc = Eqn.Loc;
      Def.IterGroup = Eqn.IterGroup;
      LValue L;
      L.Name = Fresh;
      L.Loc = Target.Loc;
      Def.Lhs.push_back(std::move(L));
      Def.Rhs = std::move(Eqn.Rhs);
      Out.push_back(std::move(Def));
      continue;
    }

    // Partial update x[i] := e — only a single top-level index into a
    // vector is supported (that is what imperative ciphers need): define
    // fresh[i] = e and copy the other elements.
    if (Target.Accesses.size() != 1 || Target.Accesses[0].IsRange ||
        !VarTy.isVector()) {
      Diags.error(Target.Loc,
                  "':=' with indices supports exactly one index into a "
                  "vector");
      return false;
    }
    bool Ok = true;
    std::map<std::string, int64_t> Empty;
    int64_t Index = Target.Accesses[0].Index.evaluate(Empty, Ok);
    if (!Ok || Index < 0 ||
        Index >= static_cast<int64_t>(VarTy.length())) {
      Diags.error(Target.Loc, "':=' index out of bounds");
      return false;
    }
    for (unsigned I = 0; I < VarTy.length(); ++I) {
      Equation Def;
      Def.K = Equation::Kind::Assign;
      Def.Loc = Eqn.Loc;
      Def.IterGroup = Eqn.IterGroup;
      LValue L;
      L.Name = Fresh;
      L.Loc = Target.Loc;
      LValue::Access A;
      A.Index = ConstExpr::makeInt(I);
      L.Accesses.push_back(std::move(A));
      Def.Lhs.push_back(std::move(L));
      if (I == static_cast<unsigned>(Index))
        Def.Rhs = std::move(Eqn.Rhs);
      else
        Def.Rhs = Expr::makeIndex(Expr::makeVar(Old), ConstExpr::makeInt(I));
      Out.push_back(std::move(Def));
    }
  }

  // Route the last version of each := variable into the variable the rest
  // of the program sees (only needed for returns; harmless otherwise, and
  // copy propagation erases it).
  for (const VarDecl &R : N.Returns) {
    auto It = Current.find(R.Name);
    if (It == Current.end() || It->second == R.Name)
      continue;
    Equation Def;
    Def.K = Equation::Kind::Assign;
    Def.Loc = R.Loc;
    LValue L;
    L.Name = R.Name;
    L.Loc = R.Loc;
    Def.Lhs.push_back(std::move(L));
    Def.Rhs = Expr::makeVar(It->second);
    Out.push_back(std::move(Def));
  }

  N.Eqns = std::move(Out);
  return true;
}

} // namespace

bool usuba::expandProgram(Program &Prog, DiagnosticEngine &Diags,
                          size_t MaxEquations) {
  for (Node &N : Prog.Nodes) {
    if (N.K != Node::Kind::Fun)
      continue;
    size_t Before = N.Eqns.size();
    std::vector<Equation> Flat;
    unsigned NextGroup = 0;
    size_t Remaining = MaxEquations ? MaxEquations : ~size_t{0};
    if (!expandEquations(N.Eqns, Flat, Diags, 0, NextGroup, 0, Remaining))
      return false;
    N.Eqns = std::move(Flat);
    if (remarksEnabled() && N.Eqns.size() != Before)
      RemarkEngine::instance().record(
          Remark::analysis("unroll", "Expanded")
              .in(N.Name)
              .at(N.Loc)
              .note("'forall' loops fully unrolled")
              .arg("equations_before", Before)
              .arg("equations_after", N.Eqns.size())
              .arg("round_groups", NextGroup));
    if (!desugarImperative(N, Diags))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Table and permutation elaboration
//===----------------------------------------------------------------------===//

namespace {

/// Reference to logical wire \p Index of a single-parameter node.
std::unique_ptr<Expr> wireRef(const VarDecl &Decl, unsigned Index) {
  if (!Decl.Ty.isVector()) {
    USUBA_ICE_CHECK(Index == 0, "indexing a scalar wire");
    return Expr::makeVar(Decl.Name);
  }
  return Expr::makeIndex(Expr::makeVar(Decl.Name),
                         ConstExpr::makeInt(Index));
}

bool elaborateTableNode(Node &N, DiagnosticEngine &Diags,
                        size_t MaxBddNodes) {
  if (N.Params.size() != 1 || N.Returns.size() != 1) {
    Diags.error(N.Loc, "table '" + N.Name +
                           "' must have exactly one input and one output");
    return false;
  }
  const VarDecl &In = N.Params[0];
  const VarDecl &OutDecl = N.Returns[0];
  unsigned InBits = In.Ty.isNat() ? 0 : In.Ty.flattenedLength();
  unsigned OutBits = OutDecl.Ty.isNat() ? 0 : OutDecl.Ty.flattenedLength();
  if (InBits == 0 || InBits > 20 || OutBits == 0 || OutBits > 64) {
    Diags.error(N.Loc, "table '" + N.Name + "' has unsupported arity");
    return false;
  }
  if (N.TableEntries.size() != (size_t{1} << InBits)) {
    Diags.error(N.Loc, "table '" + N.Name + "' must have " +
                           std::to_string(size_t{1} << InBits) +
                           " entries, found " +
                           std::to_string(N.TableEntries.size()));
    return false;
  }
  for (uint64_t Entry : N.TableEntries)
    if (OutBits < 64 && Entry >> OutBits) {
      Diags.error(N.Loc, "table '" + N.Name + "' entry " +
                             std::to_string(Entry) + " does not fit in " +
                             std::to_string(OutBits) + " bits");
      return false;
    }

  TruthTable Table;
  Table.InBits = InBits;
  Table.OutBits = OutBits;
  Table.Entries = N.TableEntries;
  TableSynthesisInfo Info;
  std::optional<Circuit> Synthesized =
      circuitForTableBudgeted(Table, MaxBddNodes, &Info);
  if (!Synthesized) {
    if (remarksEnabled())
      RemarkEngine::instance().record(
          Remark::missed("table-circuit", "BddBudget")
              .in(N.Name)
              .at(N.Loc)
              .note("table is too complex to synthesize within the BDD "
                    "node budget")
              .arg("in_bits", InBits)
              .arg("out_bits", OutBits)
              .arg("max_bdd_nodes", MaxBddNodes)
              .arg("orders_tried", Info.OrdersTried));
    Diags.error(N.Loc, "table '" + N.Name +
                           "' is too complex to synthesize within the "
                           "BDD node budget");
    return false;
  }
  Circuit &C = *Synthesized;
  if (remarksEnabled()) {
    Remark R = Remark::passed("table-circuit", "Lowered")
                   .in(N.Name)
                   .at(N.Loc)
                   .note("lookup table lowered to a constant-time circuit")
                   .arg("source", tableSynthesisSourceName(Info.From))
                   .arg("in_bits", InBits)
                   .arg("out_bits", OutBits)
                   .arg("gates", C.numGates())
                   .arg("depth", Info.Depth)
                   .arg("bdd_nodes", Info.BddNodes)
                   .arg("orders_tried", Info.OrdersTried);
    // Database hits record what plain synthesis produced at generation
    // time, so the remark can quantify the win.
    if (Info.SynthGates) {
      R.arg("synth_gates", Info.SynthGates)
          .arg("synth_depth", Info.SynthDepth)
          .arg("gates_saved",
               static_cast<int64_t>(Info.SynthGates) -
                   static_cast<int64_t>(C.numGates()))
          .arg("depth_saved", static_cast<int64_t>(Info.SynthDepth) -
                                  static_cast<int64_t>(Info.Depth));
    }
    RemarkEngine::instance().record(std::move(R));
  }

  // Scalar type for gate temporaries: the atom type of the input.
  Type TempTy = In.Ty.scalarType();

  N.K = Node::Kind::Fun;
  N.TableEntries.clear();
  N.Vars.clear();
  N.Eqns.clear();

  // Wire w of the circuit is either input w or gate temp `t<w>`.
  auto WireExpr = [&](unsigned W) -> std::unique_ptr<Expr> {
    if (W < C.numInputs())
      return wireRef(In, W);
    return Expr::makeVar("t" + std::to_string(W));
  };

  unsigned WireIndex = C.numInputs();
  for (const Circuit::Gate &G : C.gates()) {
    std::string TempName = "t" + std::to_string(WireIndex);
    N.Vars.push_back({TempName, TempTy, N.Loc});
    std::unique_ptr<Expr> Rhs;
    switch (G.Kind) {
    case Circuit::GateKind::And:
      Rhs = Expr::makeBinop(BinopKind::And, WireExpr(G.A), WireExpr(G.B));
      break;
    case Circuit::GateKind::Or:
      Rhs = Expr::makeBinop(BinopKind::Or, WireExpr(G.A), WireExpr(G.B));
      break;
    case Circuit::GateKind::Xor:
      Rhs = Expr::makeBinop(BinopKind::Xor, WireExpr(G.A), WireExpr(G.B));
      break;
    case Circuit::GateKind::Not:
      Rhs = Expr::makeNot(WireExpr(G.A));
      break;
    case Circuit::GateKind::Andn:
      // ~a & b — the back-end's fuse-andn pass reconstitutes the fused
      // form on targets that have it.
      Rhs = Expr::makeBinop(BinopKind::And, Expr::makeNot(WireExpr(G.A)),
                            WireExpr(G.B));
      break;
    case Circuit::GateKind::Const0:
      // m-agnostic all-zeros: in0 ^ in0.
      Rhs = Expr::makeBinop(BinopKind::Xor, wireRef(In, 0), wireRef(In, 0));
      break;
    case Circuit::GateKind::Const1:
      // m-agnostic all-ones: ~(in0 ^ in0).
      Rhs = Expr::makeNot(
          Expr::makeBinop(BinopKind::Xor, wireRef(In, 0), wireRef(In, 0)));
      break;
    }
    Equation Def;
    Def.K = Equation::Kind::Assign;
    Def.Loc = N.Loc;
    LValue L;
    L.Name = TempName;
    Def.Lhs.push_back(std::move(L));
    Def.Rhs = std::move(Rhs);
    N.Eqns.push_back(std::move(Def));
    ++WireIndex;
  }

  for (unsigned J = 0; J < C.outputs().size(); ++J) {
    Equation Def;
    Def.K = Equation::Kind::Assign;
    Def.Loc = N.Loc;
    LValue L;
    L.Name = OutDecl.Name;
    if (OutDecl.Ty.isVector()) {
      LValue::Access A;
      A.Index = ConstExpr::makeInt(J);
      L.Accesses.push_back(std::move(A));
    }
    Def.Lhs.push_back(std::move(L));
    Def.Rhs = WireExpr(C.outputs()[J]);
    N.Eqns.push_back(std::move(Def));
  }
  return true;
}

bool elaboratePermNode(Node &N, DiagnosticEngine &Diags) {
  if (N.Params.size() != 1 || N.Returns.size() != 1) {
    Diags.error(N.Loc, "permutation '" + N.Name +
                           "' must have exactly one input and one output");
    return false;
  }
  const VarDecl &In = N.Params[0];
  const VarDecl &OutDecl = N.Returns[0];
  unsigned InLen = In.Ty.isNat() ? 0 : In.Ty.flattenedLength();
  unsigned OutLen = OutDecl.Ty.isNat() ? 0 : OutDecl.Ty.flattenedLength();
  if (N.PermIndices.size() != OutLen) {
    Diags.error(N.Loc, "permutation '" + N.Name + "' must list " +
                           std::to_string(OutLen) + " indices, found " +
                           std::to_string(N.PermIndices.size()));
    return false;
  }
  for (unsigned P : N.PermIndices)
    if (P < 1 || P > InLen) {
      Diags.error(N.Loc, "permutation index " + std::to_string(P) +
                             " out of range [1, " + std::to_string(InLen) +
                             "]");
      return false;
    }

  std::vector<unsigned> Indices = std::move(N.PermIndices);
  N.K = Node::Kind::Fun;
  N.PermIndices.clear();
  N.Eqns.clear();
  for (unsigned J = 0; J < OutLen; ++J) {
    Equation Def;
    Def.K = Equation::Kind::Assign;
    Def.Loc = N.Loc;
    LValue L;
    L.Name = OutDecl.Name;
    if (OutDecl.Ty.isVector()) {
      LValue::Access A;
      A.Index = ConstExpr::makeInt(J);
      L.Accesses.push_back(std::move(A));
    }
    Def.Lhs.push_back(std::move(L));
    Def.Rhs = wireRef(In, Indices[J] - 1);
    N.Eqns.push_back(std::move(Def));
  }
  return true;
}

} // namespace

bool usuba::elaborateTables(Program &Prog, DiagnosticEngine &Diags,
                            size_t MaxBddNodes) {
  for (Node &N : Prog.Nodes) {
    if (N.K == Node::Kind::Table &&
        !elaborateTableNode(N, Diags, MaxBddNodes))
      return false;
    if (N.K == Node::Kind::Perm && !elaboratePermNode(N, Diags))
      return false;
  }
  return true;
}

std::vector<ProgramTable>
usuba::collectProgramTables(const Program &Prog) {
  std::vector<ProgramTable> Tables;
  for (const Node &N : Prog.Nodes) {
    if (N.K != Node::Kind::Table)
      continue;
    if (N.Params.size() != 1 || N.Returns.size() != 1)
      continue;
    unsigned InBits =
        N.Params[0].Ty.isNat() ? 0 : N.Params[0].Ty.flattenedLength();
    unsigned OutBits =
        N.Returns[0].Ty.isNat() ? 0 : N.Returns[0].Ty.flattenedLength();
    if (InBits == 0 || InBits > 20 || OutBits == 0 || OutBits > 64)
      continue;
    if (N.TableEntries.size() != (size_t{1} << InBits))
      continue;
    ProgramTable T;
    T.Name = N.Name;
    T.Table.InBits = InBits;
    T.Table.OutBits = OutBits;
    T.Table.Entries = N.TableEntries;
    Tables.push_back(std::move(T));
  }
  return Tables;
}

//===----------------------------------------------------------------------===//
// Monomorphization and flattening
//===----------------------------------------------------------------------===//

void usuba::monomorphizeProgram(Program &Prog, Dir Direction,
                                unsigned MBits) {
  for (Node &N : Prog.Nodes)
    for (auto *List : {&N.Params, &N.Returns, &N.Vars})
      for (VarDecl &D : *List)
        D.Ty = substituteType(D.Ty, Direction, MBits);
}

static Type flattenType(const Type &T) {
  switch (T.kind()) {
  case Type::Kind::Nat:
    return T;
  case Type::Kind::Base: {
    WordSize W = T.wordSize();
    USUBA_ICE_CHECK(!W.IsParam,
                    "flattening requires monomorphized word sizes");
    Type Bit = Type::base(T.direction(), WordSize::fixed(1));
    return W.Bits == 1 ? Bit : Type::vector(Bit, W.Bits);
  }
  case Type::Kind::Vector:
    return Type::vector(flattenType(T.elementType()), T.length());
  }
  return T;
}

void usuba::flattenProgram(Program &Prog) {
  for (Node &N : Prog.Nodes)
    for (auto *List : {&N.Params, &N.Returns, &N.Vars})
      for (VarDecl &D : *List)
        D.Ty = flattenType(D.Ty);
}
