//===- Optimizer.cpp - Usuba0 mid-end optimizations -----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"

#include "support/BitUtils.h"

#include <cstring>
#include <numeric>
#include <string>
#include <unordered_map>

using namespace usuba;

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

unsigned usuba::propagateCopies(U0Function &F) {
  // Root[R] = the oldest register holding the same value as R. Single
  // assignment makes this a one-pass union: a Mov's source was fully
  // resolved by the time the Mov is reached.
  std::vector<unsigned> Root(F.NumRegs);
  std::iota(Root.begin(), Root.end(), 0u);
  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  unsigned Removed = 0;
  for (U0Instr &I : F.Instrs) {
    for (unsigned &S : I.Srcs)
      S = Root[S];
    if (I.Op == U0Op::Mov) {
      Root[I.Dests[0]] = I.Srcs[0];
      ++Removed;
      continue;
    }
    Kept.push_back(std::move(I));
  }
  for (unsigned &R : F.Outputs)
    R = Root[R];
  F.Instrs = std::move(Kept);
  return Removed;
}

//===----------------------------------------------------------------------===//
// Constant folding + algebraic simplification
//===----------------------------------------------------------------------===//

unsigned usuba::foldConstants(U0Function &F, Dir Direction, unsigned MBits,
                              ConstFoldStats *Stats) {
  const uint64_t Mask = lowBitMask(MBits);
  // Element-wise rules need "every m-bit element equals the immediate",
  // which only the vertical/bitsliced Const encoding guarantees.
  const bool ElementRules = Direction == Dir::Vert || MBits == 1;
  std::vector<uint64_t> Known(F.NumRegs, 0);
  std::vector<uint8_t> IsConst(F.NumRegs, 0);
  std::vector<int> DefIdx(F.NumRegs, -1);
  unsigned Folded = 0, Simplified = 0;

  auto IsZero = [&](unsigned R) { return IsConst[R] && Known[R] == 0; };
  auto IsOnes = [&](unsigned R) { return IsConst[R] && Known[R] == Mask; };

  for (size_t Idx = 0; Idx < F.Instrs.size(); ++Idx) {
    U0Instr &I = F.Instrs[Idx];
    if (I.Op == U0Op::Barrier)
      continue;
    const unsigned D = I.Dests.empty() ? 0 : I.Dests[0];
    auto ToConst = [&](uint64_t V) {
      SourceLoc Loc = I.Loc;
      I = U0Instr::constant(D, V & Mask);
      I.Loc = Loc;
      ++Folded;
    };
    auto ToUnary = [&](U0Op Op, unsigned Src) {
      SourceLoc Loc = I.Loc;
      I = U0Instr::unary(Op, D, Src);
      I.Loc = Loc;
      ++Simplified;
    };

    switch (I.Op) {
    case U0Op::Not: {
      const unsigned A = I.Srcs[0];
      if (IsConst[A])
        ToConst(~Known[A]);
      else if (DefIdx[A] >= 0 && F.Instrs[DefIdx[A]].Op == U0Op::Not)
        ToUnary(U0Op::Mov, F.Instrs[DefIdx[A]].Srcs[0]); // ~~x = x
      break;
    }
    case U0Op::And: {
      const unsigned A = I.Srcs[0], B = I.Srcs[1];
      if (IsConst[A] && IsConst[B])
        ToConst(Known[A] & Known[B]);
      else if (A == B)
        ToUnary(U0Op::Mov, A);
      else if (IsZero(A) || IsZero(B))
        ToConst(0);
      else if (IsOnes(A))
        ToUnary(U0Op::Mov, B);
      else if (IsOnes(B))
        ToUnary(U0Op::Mov, A);
      break;
    }
    case U0Op::Or: {
      const unsigned A = I.Srcs[0], B = I.Srcs[1];
      if (IsConst[A] && IsConst[B])
        ToConst(Known[A] | Known[B]);
      else if (A == B)
        ToUnary(U0Op::Mov, A);
      else if (IsOnes(A) || IsOnes(B))
        ToConst(Mask);
      else if (IsZero(A))
        ToUnary(U0Op::Mov, B);
      else if (IsZero(B))
        ToUnary(U0Op::Mov, A);
      break;
    }
    case U0Op::Xor: {
      const unsigned A = I.Srcs[0], B = I.Srcs[1];
      if (IsConst[A] && IsConst[B])
        ToConst(Known[A] ^ Known[B]);
      else if (A == B)
        ToConst(0);
      else if (IsZero(A))
        ToUnary(U0Op::Mov, B);
      else if (IsZero(B))
        ToUnary(U0Op::Mov, A);
      else if (IsOnes(A))
        ToUnary(U0Op::Not, B);
      else if (IsOnes(B))
        ToUnary(U0Op::Not, A);
      break;
    }
    case U0Op::Andn: { // dest = ~a & b
      const unsigned A = I.Srcs[0], B = I.Srcs[1];
      if (IsConst[A] && IsConst[B])
        ToConst(~Known[A] & Known[B]);
      else if (A == B || IsOnes(A) || IsZero(B))
        ToConst(0);
      else if (IsZero(A))
        ToUnary(U0Op::Mov, B);
      else if (IsOnes(B))
        ToUnary(U0Op::Not, A);
      break;
    }
    case U0Op::Add: {
      if (!ElementRules)
        break;
      const unsigned A = I.Srcs[0], B = I.Srcs[1];
      if (IsConst[A] && IsConst[B])
        ToConst(Known[A] + Known[B]);
      else if (IsZero(A))
        ToUnary(U0Op::Mov, B);
      else if (IsZero(B))
        ToUnary(U0Op::Mov, A);
      break;
    }
    case U0Op::Sub: {
      if (!ElementRules)
        break;
      const unsigned A = I.Srcs[0], B = I.Srcs[1];
      if (IsConst[A] && IsConst[B])
        ToConst(Known[A] - Known[B]);
      else if (A == B)
        ToConst(0);
      else if (IsZero(B))
        ToUnary(U0Op::Mov, A);
      break;
    }
    case U0Op::Mul: {
      if (!ElementRules)
        break;
      const unsigned A = I.Srcs[0], B = I.Srcs[1];
      if (IsConst[A] && IsConst[B])
        ToConst(Known[A] * Known[B]);
      else if (IsZero(A) || IsZero(B))
        ToConst(0);
      else if (IsConst[A] && Known[A] == 1)
        ToUnary(U0Op::Mov, B);
      else if (IsConst[B] && Known[B] == 1)
        ToUnary(U0Op::Mov, A);
      break;
    }
    case U0Op::Lshift:
    case U0Op::Rshift: {
      const unsigned A = I.Srcs[0];
      if (I.Amount == 0)
        ToUnary(U0Op::Mov, A); // identity under both shift semantics
      else if (ElementRules && IsConst[A] && I.Amount < MBits)
        ToConst(I.Op == U0Op::Lshift ? (Known[A] << I.Amount)
                                     : (Known[A] >> I.Amount));
      break;
    }
    case U0Op::Lrotate:
    case U0Op::Rrotate: {
      const unsigned A = I.Srcs[0];
      if (I.Amount % MBits == 0)
        ToUnary(U0Op::Mov, A);
      else if (ElementRules && IsConst[A])
        ToConst(I.Op == U0Op::Lrotate
                    ? rotateLeft(Known[A], I.Amount % MBits, MBits)
                    : rotateRight(Known[A], I.Amount % MBits, MBits));
      break;
    }
    default: // Mov, Const, Shuffle, Call: nothing to rewrite
      break;
    }

    for (unsigned Dest : I.Dests)
      DefIdx[Dest] = static_cast<int>(Idx);
    if (I.Op == U0Op::Const) {
      IsConst[D] = 1;
      Known[D] = I.Imm & Mask;
    } else if (I.Op == U0Op::Mov && IsConst[I.Srcs[0]]) {
      IsConst[D] = 1;
      Known[D] = Known[I.Srcs[0]];
    }
  }
  if (Stats) {
    Stats->Folded = Folded;
    Stats->Simplified = Simplified;
  }
  return Folded + Simplified;
}

//===----------------------------------------------------------------------===//
// Hash-based local value numbering
//===----------------------------------------------------------------------===//

namespace {

/// Compact binary key for one computation: opcode, canonicalized operand
/// numbers (commutative pairs sorted), and whichever immediates the
/// opcode reads. Keys live in an unordered_map, replacing the ordered
/// tuple-map of the structural CSE this pass supersedes.
std::string vnKey(const U0Instr &I) {
  std::string Key;
  Key.reserve(16 + I.Srcs.size() * 4 + I.Pattern.size());
  Key.push_back(static_cast<char>(I.Op));
  unsigned A = I.Srcs.empty() ? 0 : I.Srcs[0];
  unsigned B = I.Srcs.size() > 1 ? I.Srcs[1] : 0;
  switch (I.Op) {
  case U0Op::And:
  case U0Op::Or:
  case U0Op::Xor:
  case U0Op::Add:
  case U0Op::Mul:
    if (B < A)
      std::swap(A, B);
    break;
  default:
    break;
  }
  char Buf[sizeof(unsigned) * 3 + sizeof(uint64_t)];
  std::memcpy(Buf, &A, sizeof(unsigned));
  std::memcpy(Buf + sizeof(unsigned), &B, sizeof(unsigned));
  std::memcpy(Buf + 2 * sizeof(unsigned), &I.Amount, sizeof(unsigned));
  std::memcpy(Buf + 3 * sizeof(unsigned), &I.Imm, sizeof(uint64_t));
  Key.append(Buf, sizeof(Buf));
  Key.append(reinterpret_cast<const char *>(I.Pattern.data()),
             I.Pattern.size());
  return Key;
}

} // namespace

unsigned usuba::valueNumber(U0Function &F) {
  // Canon[R] = the register whose definition computes R's value. Movs
  // vanish into the table; repeated computations reroute to the first.
  std::vector<unsigned> Canon(F.NumRegs);
  std::iota(Canon.begin(), Canon.end(), 0u);
  std::unordered_map<std::string, unsigned> Table;
  Table.reserve(F.Instrs.size());
  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  unsigned Removed = 0;
  for (U0Instr &I : F.Instrs) {
    for (unsigned &S : I.Srcs)
      S = Canon[S];
    if (I.Op == U0Op::Mov) {
      Canon[I.Dests[0]] = I.Srcs[0];
      ++Removed;
      continue;
    }
    if (I.Op == U0Op::Call || I.Op == U0Op::Barrier) {
      Kept.push_back(std::move(I)); // opaque: defines fresh values
      continue;
    }
    auto [It, Inserted] = Table.emplace(vnKey(I), I.Dests[0]);
    if (!Inserted) {
      Canon[I.Dests[0]] = It->second;
      ++Removed;
      continue;
    }
    Kept.push_back(std::move(I));
  }
  for (unsigned &R : F.Outputs)
    R = Canon[R];
  F.Instrs = std::move(Kept);
  return Removed;
}

//===----------------------------------------------------------------------===//
// Mark-and-sweep dead code elimination
//===----------------------------------------------------------------------===//

unsigned usuba::sweepDeadCode(U0Function &F) {
  std::vector<int> DefIdx(F.NumRegs, -1);
  for (size_t I = 0; I < F.Instrs.size(); ++I)
    for (unsigned D : F.Instrs[I].Dests)
      DefIdx[D] = static_cast<int>(I);

  // Mark: seed with the output defs, chase use-def edges. Barriers are
  // scheduling fences, not computations; they always survive.
  std::vector<uint8_t> Marked(F.Instrs.size(), 0);
  std::vector<unsigned> Work;
  auto MarkReg = [&](unsigned R) {
    int I = DefIdx[R];
    if (I >= 0 && !Marked[I]) {
      Marked[I] = 1;
      Work.push_back(static_cast<unsigned>(I));
    }
  };
  for (unsigned R : F.Outputs)
    MarkReg(R);
  while (!Work.empty()) {
    unsigned I = Work.back();
    Work.pop_back();
    for (unsigned S : F.Instrs[I].Srcs)
      MarkReg(S);
  }

  // Sweep.
  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  unsigned Removed = 0;
  for (size_t I = 0; I < F.Instrs.size(); ++I) {
    if (Marked[I] || F.Instrs[I].Op == U0Op::Barrier)
      Kept.push_back(std::move(F.Instrs[I]));
    else
      ++Removed;
  }
  F.Instrs = std::move(Kept);
  return Removed;
}

//===----------------------------------------------------------------------===//
// CTR specialization: bind entry inputs to literals
//===----------------------------------------------------------------------===//

unsigned usuba::specializeEntryInputs(
    U0Program &Prog,
    const std::vector<std::pair<unsigned, uint64_t>> &Bindings) {
  U0Function &F = Prog.entry();
  const unsigned OldNumRegs = F.NumRegs;
  std::vector<unsigned> Remap(OldNumRegs);
  std::iota(Remap.begin(), Remap.end(), 0u);
  std::vector<U0Instr> Prefix;
  unsigned Bound = 0;
  for (const auto &Binding : Bindings) {
    const unsigned Reg = Binding.first;
    if (Reg >= F.NumInputs)
      continue; // only ABI inputs can be bound
    const unsigned NewReg = F.addReg();
    Prefix.push_back(U0Instr::constant(NewReg, Binding.second));
    Remap[Reg] = NewReg;
    ++Bound;
  }
  if (!Bound)
    return 0;
  for (U0Instr &I : F.Instrs)
    for (unsigned &S : I.Srcs)
      if (S < OldNumRegs)
        S = Remap[S];
  for (unsigned &R : F.Outputs)
    if (R < OldNumRegs)
      R = Remap[R];
  F.Instrs.insert(F.Instrs.begin(), Prefix.begin(), Prefix.end());
  return Bound;
}
