//===- AstPasses.h - Front-end AST transformations --------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The front-end transformations of Section 3.1 that operate before type
/// checking, all AST -> AST:
///
///  * expandProgram: macro-expands `forall` groups and desugars the
///    imperative assignment `x := e` into single-assignment form;
///  * elaborateTables: rewrites `table`/`perm` definitions into ordinary
///    circuit nodes (exactly the rewriting the paper shows for Rectangle's
///    SubColumn);
///  * monomorphizeProgram: substitutes the direction parameter 'D and the
///    word-size parameter 'm (flags -V/-H and -w m);
///  * flattenProgram: the -B whole-program flattening of m-sliced types
///    uDm×n to bm[n]; the body is reinterpreted through ad-hoc
///    polymorphism alone.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_ASTPASSES_H
#define USUBA_CORE_ASTPASSES_H

#include "circuits/Circuit.h"
#include "frontend/Ast.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace usuba {

/// Default unrolling budget: at most this many expanded equations per
/// node (hostile `forall` nests diagnose instead of exhausting memory).
inline constexpr size_t DefaultUnrollBudget = size_t{1} << 20;

/// Default cap on BDD nodes built while synthesizing one table.
inline constexpr size_t DefaultBddNodeBudget = size_t{1} << 22;

/// Expands every `forall` by cloning its body once per index value
/// (substituting the index into compile-time expressions) and desugars
/// `:=` into fresh single-assignment variables. After this pass every
/// compile-time expression in the program is closed. Returns false (with
/// diagnostics) on malformed bounds, `:=` misuse, or when a node expands
/// to more than \p MaxEquations equations (resource guard).
bool expandProgram(ast::Program &Prog, DiagnosticEngine &Diags,
                   size_t MaxEquations = DefaultUnrollBudget);

/// Replaces each table with its Boolean circuit (database hit or BDD
/// synthesis) and each permutation with explicit wiring equations.
/// Both become plain nodes; the rest of the pipeline never sees
/// Table/Perm definitions again. Returns false on arity/size errors or
/// when synthesis would exceed \p MaxBddNodes BDD nodes (resource guard).
bool elaborateTables(ast::Program &Prog, DiagnosticEngine &Diags,
                     size_t MaxBddNodes = DefaultBddNodeBudget);

/// One lookup table found in a parsed (not yet elaborated) program.
struct ProgramTable {
  std::string Name; ///< the table node's name, e.g. "SubColumn"
  TruthTable Table;
};

/// Collects every well-formed `table` definition of \p Prog as a truth
/// table, without elaborating anything. Tables with unsupported arity
/// are skipped. Used by the superoptimizer drivers (usubac --superopt,
/// bench/superopt_sboxes).
std::vector<ProgramTable> collectProgramTables(const ast::Program &Prog);

/// Substitutes 'D -> \p Direction and (when \p MBits != 0) 'm -> MBits in
/// every declaration of the program.
void monomorphizeProgram(ast::Program &Prog, Dir Direction, unsigned MBits);

/// The -B transformation: rewrites every base type u<D><m> with m > 1 into
/// the vector u<D>1[m] throughout the program (vector index 0 holds the
/// atom's most significant bit). Equations are untouched: operator
/// elaboration at the rewritten types either succeeds (the program is
/// bitslicable) or type checking reports which operator has no instance.
void flattenProgram(ast::Program &Prog);

} // namespace usuba

#endif // USUBA_CORE_ASTPASSES_H
