//===- Optimizer.h - Usuba0 mid-end optimizations ---------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Usuba0 mid-end: classic scalar optimizations run between inlining
/// and scheduling. The inliner leaves long Mov chains and the table
/// synthesizer emits structurally redundant gates; these passes collapse
/// both and fold whatever the front-end reduced to constants. Every pass
/// is a pure IR-to-IR rewrite with a count result, so the checkpointed
/// pipeline can attribute the instruction-count delta pass by pass.
///
/// Folding soundness depends on the slicing direction. A `Const` register
/// broadcasts its immediate into every m-bit element (vertical) or fills
/// position j with ones when bit m-1-j of the immediate is set
/// (horizontal) — see SimdReg.h. Bitwise rules (And/Or/Xor/Andn/Not and
/// the zero / all-ones tests) hold under both encodings; element-wise
/// rules (Add/Sub/Mul, shifts, rotates) are only applied when the
/// program is vertical or bitsliced (m == 1), where "each element holds
/// the immediate" is literally true.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_OPTIMIZER_H
#define USUBA_CORE_OPTIMIZER_H

#include "core/Usuba0.h"

#include <cstdint>
#include <utility>
#include <vector>

namespace usuba {

/// Copy propagation: reroutes every use of a Mov destination to the Mov's
/// (transitively resolved) source and drops the Mov. Movs feeding function
/// outputs are dropped too — the output list is rerouted. Returns the
/// number of Movs removed.
unsigned propagateCopies(U0Function &F);

/// What foldConstants did, for remark attribution.
struct ConstFoldStats {
  unsigned Folded = 0;     ///< instructions rewritten to Const
  unsigned Simplified = 0; ///< algebraic identities applied (Mov/Not form)
};

/// Constant folding plus algebraic simplification over the Logic, Arith
/// and Shift op classes (x^x = 0, x&x = x, x&0 = 0, x|~0 = ~0, the andn
/// identities, shift-by-0, double negation, ...). Rewrites in place and
/// never grows the function; dead operands are left for DCE. \p Direction
/// and \p MBits gate the element-wise rules (see the file comment).
/// Returns the number of instructions rewritten.
unsigned foldConstants(U0Function &F, Dir Direction, unsigned MBits,
                       ConstFoldStats *Stats = nullptr);

/// Hash-based local value numbering: assigns each instruction a value
/// number over (opcode, canonicalized operand numbers, immediates),
/// commutative-operand order normalized, and deletes every instruction
/// whose value was already computed, rerouting its uses. Subsumes the
/// structural CSE it replaces and additionally sees through Mov chains.
/// Calls and barriers are opaque. Returns the number of instructions
/// removed.
unsigned valueNumber(U0Function &F);

/// Mark-and-sweep dead-code elimination: marks the defs reachable from
/// the function outputs through the use-def chains and sweeps the rest.
/// Barriers are control markers and always survive. Returns the number of
/// instructions removed.
unsigned sweepDeadCode(U0Function &F);

/// CTR specialization hook: binds entry input registers to literal atoms.
/// For each (register, immediate) pair — the register must be one of the
/// entry's inputs — a Const definition is prepended and every use of the
/// input is rerouted to it. The entry ABI (NumInputs, parameter order) is
/// deliberately unchanged: bound inputs simply become dead, so the
/// transposition runtime can keep staging buffers as before while the
/// folded cone disappears. Callers follow up with foldConstants /
/// valueNumber / sweepDeadCode to collapse the cone. Returns the number
/// of inputs bound.
unsigned specializeEntryInputs(U0Program &Prog,
                               const std::vector<std::pair<unsigned, uint64_t>>
                                   &Bindings);

} // namespace usuba

#endif // USUBA_CORE_OPTIMIZER_H
