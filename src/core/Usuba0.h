//===- Usuba0.h - The monomorphic core IR -----------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Usuba0, the core language of the paper (Section 3): a monomorphic
/// dataflow graph whose nodes are the logical and arithmetic operations of
/// the target instruction set. We represent it as three-address code over
/// virtual registers, each register holding one *atom* (a uDm word,
/// replicated over every slice of the target register). The single-
/// assignment discipline of the dataflow language is kept: every register
/// is defined exactly once, which makes the back-end passes (inlining,
/// scheduling, interleaving, copy propagation) simple rewrites.
///
/// Key property (the paper's constant-time argument): the instruction set
/// below contains no branches and no memory accesses — a kernel is a pure
/// straight-line function of its inputs, so it is constant-time by
/// construction. verifyConstantTime() re-checks this structurally.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_USUBA0_H
#define USUBA_CORE_USUBA0_H

#include "support/SourceLoc.h"
#include "types/Arch.h"
#include "types/Type.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace usuba {

/// Usuba0 opcodes. Element semantics (m = atom word size, direction from
/// the enclosing program):
///  - logic ops act bitwise on the whole register;
///  - arith ops act per m-bit element, vertically;
///  - vertical shifts/rotates act per m-bit element (value semantics);
///  - horizontal shifts/rotates/shuffles permute the m packed elements an
///    atom occupies (positions are *vector indices*: position 0 is the
///    atom's most significant bit).
enum class U0Op : uint8_t {
  Mov,     ///< dest = src
  Const,   ///< dest = immediate atom value, broadcast to every slice
  Not,     ///< dest = ~a
  And,     ///< dest = a & b
  Or,      ///< dest = a | b
  Xor,     ///< dest = a ^ b
  Andn,    ///< dest = ~a & b (vandnps-style; produced by peepholes)
  Add,     ///< dest = a + b (mod 2^m, per element)
  Sub,     ///< dest = a - b
  Mul,     ///< dest = a * b
  Lshift,  ///< dest = a << k
  Rshift,  ///< dest = a >> k (logical)
  Lrotate, ///< dest = a <<< k
  Rrotate, ///< dest = a >>> k
  Shuffle, ///< dest bit(position) j = a bit Pattern[j] (H direction)
  Call,    ///< dests... = callee(srcs...)
  Barrier, ///< scheduling fence (models not unrolling round loops)
};

const char *u0OpName(U0Op Op);

/// True for opcodes whose cost model / port assignment is "shuffle unit"
/// (single execution port on Skylake — see the m-slice scheduler).
bool isShuffleLike(U0Op Op);
/// True for packed-arithmetic opcodes.
bool isArithOp(U0Op Op);
/// True for plain bitwise-logic opcodes (including Mov and Const).
bool isLogicOp(U0Op Op);

/// One Usuba0 instruction. Register operands index into the enclosing
/// function's register space.
struct U0Instr {
  U0Op Op = U0Op::Mov;
  std::vector<unsigned> Dests; ///< 1 for all ops but Call/Barrier
  std::vector<unsigned> Srcs;
  unsigned Amount = 0;           ///< shifts/rotates
  uint64_t Imm = 0;              ///< Const
  unsigned Callee = 0;           ///< Call: function index in the program
  std::vector<uint8_t> Pattern;  ///< Shuffle positions (size = m)
  /// Provenance: the `.ua` source position this instruction descends
  /// from. Stamped by the normalizer from equation locations, preserved
  /// verbatim by every back-end pass (inlined instructions keep their
  /// callee-body locations; copy propagation and CSE never synthesize
  /// instructions). May be invalid for purely synthetic code.
  SourceLoc Loc;

  static U0Instr unary(U0Op Op, unsigned Dest, unsigned Src) {
    U0Instr I;
    I.Op = Op;
    I.Dests = {Dest};
    I.Srcs = {Src};
    return I;
  }
  static U0Instr binary(U0Op Op, unsigned Dest, unsigned A, unsigned B) {
    U0Instr I;
    I.Op = Op;
    I.Dests = {Dest};
    I.Srcs = {A, B};
    return I;
  }
  static U0Instr constant(unsigned Dest, uint64_t Imm) {
    U0Instr I;
    I.Op = U0Op::Const;
    I.Dests = {Dest};
    I.Imm = Imm;
    return I;
  }
  static U0Instr shift(U0Op Op, unsigned Dest, unsigned Src,
                       unsigned Amount) {
    U0Instr I = unary(Op, Dest, Src);
    I.Amount = Amount;
    return I;
  }
  static U0Instr shuffle(unsigned Dest, unsigned Src,
                         std::vector<uint8_t> Pattern) {
    U0Instr I = unary(U0Op::Shuffle, Dest, Src);
    I.Pattern = std::move(Pattern);
    return I;
  }
  static U0Instr call(unsigned Callee, std::vector<unsigned> Dests,
                      std::vector<unsigned> Srcs) {
    U0Instr I;
    I.Op = U0Op::Call;
    I.Callee = Callee;
    I.Dests = std::move(Dests);
    I.Srcs = std::move(Srcs);
    return I;
  }
  static U0Instr barrier() {
    U0Instr I;
    I.Op = U0Op::Barrier;
    return I;
  }
};

/// An Usuba0 function: straight-line single-assignment code from input
/// registers to output registers.
struct U0Function {
  std::string Name;
  unsigned NumRegs = 0;
  /// Input registers, in ABI order (always 0..NumInputs-1).
  unsigned NumInputs = 0;
  /// Output registers (register ids; defined by the body or inputs).
  std::vector<unsigned> Outputs;
  std::vector<U0Instr> Instrs;

  unsigned addReg() { return NumRegs++; }

  /// Renders the function as readable text (for tests and -dump-u0).
  /// With \p WithLocs, instructions carrying provenance gain a trailing
  /// "; ua:line:col" annotation.
  std::string str(bool WithLocs = false) const;
};

/// A monomorphic Usuba0 program: the functions (entry last), the slicing
/// it was monomorphized to and the architecture it targets.
struct U0Program {
  std::vector<U0Function> Funcs;
  Dir Direction = Dir::Vert;
  unsigned MBits = 1; ///< atom word size; 1 = bitslicing
  const Arch *Target = nullptr;
  /// Number of independent cipher instances statically interleaved into
  /// the entry function (Section 3.2); the runtime feeds this many blocks
  /// of inputs per kernel invocation.
  unsigned InterleaveFactor = 1;

  U0Function &entry() {
    assert(!Funcs.empty() && "empty program");
    return Funcs.back();
  }
  const U0Function &entry() const {
    assert(!Funcs.empty() && "empty program");
    return Funcs.back();
  }
  unsigned entryIndex() const {
    return static_cast<unsigned>(Funcs.size()) - 1;
  }

  std::string str(bool WithLocs = false) const;
};

/// Structural sanity check: operand counts per opcode, register indices in
/// range, single assignment, no use before definition, outputs defined,
/// call signatures consistent. Returns an empty string when the program is
/// well-formed, otherwise a description of the first violation.
std::string verifyU0(const U0Program &Prog);

/// The constant-time-by-construction check: every instruction belongs to
/// the data-independent whitelist above (no branches, no indexed loads
/// exist in the IR at all). Returns true and never fails for programs
/// produced by this pipeline; exposed so users embedding hand-built IR get
/// the same guarantee.
bool verifyConstantTime(const U0Program &Prog);

} // namespace usuba

#endif // USUBA_CORE_USUBA0_H
