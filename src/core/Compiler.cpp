//===- Compiler.cpp - The Usubac driver -----------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/AstPasses.h"
#include "core/Normalize.h"
#include "core/Passes.h"
#include "core/TypeChecker.h"
#include "support/BitUtils.h"
#include "frontend/Parser.h"

using namespace usuba;

std::optional<CompiledKernel>
usuba::compileUsuba(std::string_view Source, const CompileOptions &Options,
                    DiagnosticEngine &Diags) {
  std::optional<ast::Program> Prog = parseProgram(Source, Diags);
  if (!Prog)
    return std::nullopt;
  return compileAst(std::move(*Prog), Options, Diags);
}

std::optional<CompiledKernel> usuba::compileAst(ast::Program Prog,
                                                const CompileOptions &Options,
                                                DiagnosticEngine &Diags) {
  const Arch &Target = Options.Target ? *Options.Target : archGP64();

  // --- Front-end (Section 3.1) -------------------------------------------
  if (!expandProgram(Prog, Diags) || !elaborateTables(Prog, Diags))
    return std::nullopt;
  monomorphizeProgram(Prog, Options.Direction, Options.WordBits);
  if (Options.Bitslice)
    flattenProgram(Prog);
  if (!checkProgram(Prog, Target, Diags))
    return std::nullopt;

  CompiledKernel Result;
  for (const ast::VarDecl &P : Prog.entry().Params)
    Result.ParamTypes.push_back(P.Ty);
  for (const ast::VarDecl &R : Prog.entry().Returns)
    Result.ReturnTypes.push_back(R.Ty);

  // The atom word size of the monomorphic program is derived from the
  // declarations themselves (the -w flag only resolves 'm): a program may
  // use one atom size m, optionally alongside single bits. Mixed sizes
  // above one bit would need per-instruction element widths, which the
  // instruction sets of Table 1 do not offer either.
  unsigned MBits = 1;
  for (const ast::Node &N : Prog.Nodes)
    for (const auto *List : {&N.Params, &N.Returns, &N.Vars})
      for (const ast::VarDecl &D : *List) {
        unsigned Bits = D.Ty.scalarType().wordSize().Bits;
        if (Bits == 1)
          continue;
        if (MBits != 1 && MBits != Bits) {
          Diags.error(D.Loc,
                      "program mixes atom sizes " + std::to_string(MBits) +
                          " and " + std::to_string(Bits) +
                          "; a sliced program has a single element width");
          return std::nullopt;
        }
        MBits = Bits;
      }
  if (MBits != 1 && !isPowerOf2(MBits)) {
    Diags.error({}, "atom size " + std::to_string(MBits) +
                        " is not a power of two; no packed layout exists");
    return std::nullopt;
  }

  U0Program U0 = normalizeProgram(Prog, Options.Direction, MBits, Target,
                                  /*RoundBarriers=*/!Options.Unroll);
  cleanupProgram(U0);

  // Register pressure is measured on the dependency-ordered code, before
  // scheduling stretches live ranges, and counts temporaries only (inputs
  // model memory-resident operands). This reproduces the paper's counts
  // ("Serpent and Rectangle use respectively 8 and 7 AVX registers").
  {
    U0Program Pressure = U0;
    inlineAllCalls(Pressure);
    cleanupProgram(Pressure);
    Result.MaxLive =
        maxLiveRegisters(Pressure.entry(), /*CountInputs=*/false);
  }

  // --- Back-end (Section 3.2) --------------------------------------------
  bool BitsliceMode = MBits == 1;
  if (BitsliceMode) {
    // The bitslice scheduler works on the call structure (Algorithm 1
    // applies "regardless of whether those functions will be inlined"),
    // so run it before inlining.
    if (Options.Schedule)
      scheduleBitslice(U0.entry());
    if (Options.Inline) {
      inlineAllCalls(U0);
      cleanupProgram(U0);
    }
  } else {
    if (Options.Inline) {
      inlineAllCalls(U0);
      cleanupProgram(U0);
    }
  }
  for (U0Function &F : U0.Funcs)
    if (eliminateCommonSubexpressions(F))
      eliminateDeadCode(F), compactRegisters(F);
  if (!BitsliceMode && Options.Schedule)
    scheduleMSlice(U0.entry(), Target);

  if (Options.FuseAndn)
    for (U0Function &F : U0.Funcs)
      fuseAndNot(F);

  if (Options.Interleave) {
    unsigned Factor = Options.InterleaveFactorOverride
                          ? Options.InterleaveFactorOverride
                          : interleaveFactorFor(Result.MaxLive, Target);
    interleaveEntry(U0, Factor);
  }

  for (U0Function &F : U0.Funcs)
    stripBarriers(F);

  std::string VerifyError = verifyU0(U0);
  if (!VerifyError.empty()) {
    // A verifier failure here is a compiler bug, not a user error; still
    // report it gracefully in release builds.
    assert(false && "pipeline produced ill-formed Usuba0");
    Diags.error({}, "internal error: " + VerifyError);
    return std::nullopt;
  }

  Result.InstrCount = U0.entry().Instrs.size();
  Result.Prog = std::move(U0);
  return Result;
}
