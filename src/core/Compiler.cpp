//===- Compiler.cpp - The Usubac driver -----------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Compiler.h"

#include "core/AstPasses.h"
#include "core/Normalize.h"
#include "core/Optimizer.h"
#include "core/Passes.h"
#include "core/TypeChecker.h"
#include "core/Validator.h"
#include "support/BitUtils.h"
#include "support/Remarks.h"
#include "support/Telemetry.h"
#include "frontend/Parser.h"

#include <chrono>
#include <cstdlib>
#include <functional>

using namespace usuba;

namespace {

/// The most meaningful `.ua` anchor a whole-function remark can carry:
/// the first call site (pass decisions revolve around the call
/// structure), else the first instruction with provenance at all.
SourceLoc firstCallLoc(const U0Function &F) {
  for (const U0Instr &I : F.Instrs)
    if (I.Op == U0Op::Call && I.Loc.isValid())
      return I.Loc;
  for (const U0Instr &I : F.Instrs)
    if (I.Loc.isValid())
      return I.Loc;
  return {};
}

/// Whether translation validation is on for this compile: the explicit
/// option, or the environment (USUBA_VALIDATE=1).
bool validationEnabled(const CompileOptions &Options) {
  if (Options.ValidatePasses)
    return true;
  const char *Env = std::getenv("USUBA_VALIDATE");
  return Env && Env[0] != '0' && Env[0] != '\0';
}

/// The DebugMiscompilePass fault injection: a semantics-changing but
/// structurally well-formed corruption — flip the opcode of a logic
/// instruction with distinct operands (or, failing that, a constant's
/// low bit). verifyU0/verifyConstantTime cannot see it; only the
/// translation validator (or a differential test) can.
void injectMiscompile(U0Program &Prog) {
  U0Function &Entry = Prog.entry();
  for (U0Instr &I : Entry.Instrs)
    if ((I.Op == U0Op::Xor || I.Op == U0Op::And) && I.Srcs[0] != I.Srcs[1]) {
      I.Op = I.Op == U0Op::Xor ? U0Op::Or : U0Op::Xor;
      return;
    }
  for (U0Instr &I : Entry.Instrs)
    if (I.Op == U0Op::Or && I.Srcs[0] != I.Srcs[1]) {
      I.Op = U0Op::And;
      return;
    }
  for (U0Instr &I : Entry.Instrs)
    if (I.Op == U0Op::Const) {
      I.Imm ^= 1;
      return;
    }
}

/// Runs each back-end optimization under a verified checkpoint: the
/// U0Program is snapshotted before the pass, then re-verified (structure
/// and constant-time) after it. A pass that raises an ICE or produces
/// ill-formed IR is rolled back — the kernel is still compiled, just
/// without that optimization — and the incident is recorded in
/// CompiledKernel::SkippedPasses plus a warning diagnostic. Optimizations
/// are optional by design (every one is an ablation toggle already), so
/// dropping one can never change results, only performance.
///
/// With CompileOptions::ValidatePasses (or USUBA_VALIDATE=1), every kept
/// pass is additionally *translation-validated* against its own snapshot
/// (core/Validator.h). A mismatch — a pass that produced well-formed IR
/// computing the wrong function — rolls the pass back like a structural
/// failure, then demotes the whole compile to -O0: the mid-end's effects
/// are undone from the mid-end checkpoint and every remaining optional
/// pass is refused. Serving unoptimized-but-correct bytes beats serving
/// fast wrong ones.
class CheckpointedPassRunner {
public:
  CheckpointedPassRunner(U0Program &Prog, const CompileOptions &Options,
                         DiagnosticEngine &Diags,
                         std::vector<std::string> &Skipped,
                         std::vector<PassStat> &Stats)
      : Prog(Prog), Options(Options), Diags(Diags), Skipped(Skipped),
        Stats(Stats), Validate(validationEnabled(Options)),
        Deadline(std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(Options.Budgets.MaxOptimizeMillis)) {
  }

  /// Marks the start of the mid-end: the demotion checkpoint. A
  /// validation mismatch at or after this point restores this snapshot,
  /// so a demoted compile carries exactly the -O0 mid-end state.
  void markMidEndStart() {
    if (Validate)
      MidEndSnapshot = Prog;
    MidEndStatsBase = Stats.size();
  }

  /// Runs \p Pass under a checkpoint. \p Pass returns an empty string on
  /// success or a refusal reason (e.g. a budget it will not fit in), in
  /// which case it must leave the program untouched. Returns true when
  /// the pass ran and was kept. Every attempt — kept, rolled back or
  /// refused — is accounted in CompiledKernel::PassStats (wall time,
  /// instruction-count delta, budget consumption) and, when telemetry is
  /// enabled, as a "usubac.pass.<name>" span.
  bool run(const char *Name, const std::function<std::string(U0Program &)> &Pass) {
    if (Demoted) {
      skip(Name, DemoteReason);
      recordStat(Name, 0, 0, /*Kept=*/false);
      noteAttempt(Name, DemoteReason);
      return false;
    }
    if (Options.Budgets.MaxOptimizeMillis &&
        std::chrono::steady_clock::now() > Deadline) {
      skip(Name, "optimization time budget exhausted");
      recordStat(Name, 0, 0, /*Kept=*/false);
      noteAttempt(Name, "optimization time budget exhausted");
      return false;
    }
    const int64_t InstrsBefore = totalInstrs();
    const uint64_t StartNs = telemetry_detail::nowNanos();
    const auto Start = std::chrono::steady_clock::now();
    U0Program Snapshot = Prog;
    std::string Reason;
    try {
      Reason = Pass(Prog);
      if (Reason.empty() && Options.DebugIcePass &&
          std::string_view(Options.DebugIcePass) == Name)
        USUBA_ICE("deliberate test ICE after pass '" + std::string(Name) +
                  "'");
      if (Reason.empty() && Options.DebugBreakPass &&
          std::string_view(Options.DebugBreakPass) == Name)
        Prog.entry().Instrs.push_back(
            U0Instr::unary(U0Op::Mov, Prog.entry().NumRegs + 7, 0));
      if (Reason.empty() && Options.DebugMiscompilePass &&
          std::string_view(Options.DebugMiscompilePass) == Name)
        injectMiscompile(Prog);
    } catch (const InternalCompilerError &E) {
      Reason = E.str();
    }
    if (Reason.empty()) {
      std::string VerifyError = verifyU0(Prog);
      if (!VerifyError.empty())
        Reason = "post-pass verification failed: " + VerifyError;
      else if (!verifyConstantTime(Prog))
        Reason = "post-pass constant-time verification failed";
    }
    // Translation validation: the structurally sound result must also
    // compute the same function the snapshot did. Interleaving is exempt
    // (it changes the entry interface by design; output-cone comparison
    // cannot model it).
    ValidationOutcome Validated;
    bool DidValidate = false;
    if (Reason.empty() && Validate &&
        std::string_view(Name) != "interleave") {
      Validated =
          validateTransformation(Snapshot, Prog, Options.Budgets.MaxBddNodes);
      DidValidate = true;
      noteValidation(Name, Validated);
      if (Validated.K == ValidationOutcome::Kind::Mismatch)
        Reason = "translation validation failed: " + Validated.Detail;
    }
    const bool Kept = Reason.empty();
    if (!Kept)
      Prog = std::move(Snapshot);
    const double Millis =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - Start)
            .count();
    recordStat(Name, Millis, Kept ? totalInstrs() - InstrsBefore : 0, Kept);
    if (telemetryEnabled())
      Telemetry::instance().span(std::string("usubac.pass.") + Name, StartNs,
                                 telemetry_detail::nowNanos() - StartNs,
                                 telemetry_detail::threadTag());
    noteAttempt(Name, Reason);
    if (Kept)
      return true;
    skip(Name, Reason);
    if (DidValidate && Validated.K == ValidationOutcome::Kind::Mismatch)
      demoteToO0(Name);
    return false;
  }

private:
  int64_t totalInstrs() const {
    int64_t Total = 0;
    for (const U0Function &F : Prog.Funcs)
      Total += static_cast<int64_t>(F.Instrs.size());
    return Total;
  }

  void recordStat(const char *Name, double Millis, int64_t InstrDelta,
                  bool Kept) {
    double Remaining = 0;
    if (Options.Budgets.MaxOptimizeMillis) {
      Remaining = std::chrono::duration<double, std::milli>(
                      Deadline - std::chrono::steady_clock::now())
                      .count();
      if (Remaining < 0)
        Remaining = 0;
    }
    Stats.push_back({Name, Millis, InstrDelta, Kept, Remaining});
  }

  /// Post-attempt bookkeeping shared by every run() exit: one
  /// "PassSummary" analysis remark per attempt (the CI validator's
  /// guarantee of >= 1 remark per PassStats entry), a "NotApplied"
  /// missed remark carrying the refusal reason, and the PassObserver
  /// callback. Expects recordStat() to have pushed the attempt already.
  void noteAttempt(const char *Name, const std::string &Reason) {
    const PassStat &S = Stats.back();
    if (remarksEnabled()) {
      RemarkEngine::instance().record(
          Remark::analysis(Name, "PassSummary")
              .in(Prog.entry().Name)
              .at(firstCallLoc(Prog.entry()))
              .note(S.Kept ? "pass ran and was kept" : "pass was not applied")
              .arg("wall_ms", S.WallMillis)
              .arg("instr_delta", S.InstrDelta)
              .arg("kept", S.Kept ? "true" : "false")
              .arg("budget_ms_remaining", S.BudgetMillisRemaining));
      if (!S.Kept)
        RemarkEngine::instance().record(Remark::missed(Name, "NotApplied")
                                            .in(Prog.entry().Name)
                                            .at(firstCallLoc(Prog.entry()))
                                            .note(Reason));
    }
    if (Options.PassObserver)
      Options.PassObserver(S, Prog);
  }

  void skip(const char *Name, const std::string &Reason) {
    Skipped.push_back(Name);
    Diags.warning({}, "optimization pass '" + std::string(Name) +
                          "' skipped: " + Reason +
                          "; the kernel is unoptimized but correct");
  }

  /// Per-validation bookkeeping: one telemetry counter bump
  /// ("usubac.validate.<outcome>") and one structured remark under the
  /// validated pass's name.
  void noteValidation(const char *Name, const ValidationOutcome &VO) {
    if (telemetryEnabled())
      Telemetry::instance().count(std::string("usubac.validate.") +
                                  [&] {
                                    switch (VO.K) {
                                    case ValidationOutcome::Kind::Proven:
                                      return "proven";
                                    case ValidationOutcome::Kind::CheckedRandom:
                                      return "checked";
                                    case ValidationOutcome::Kind::Mismatch:
                                      return "mismatch";
                                    case ValidationOutcome::Kind::Skipped:
                                      return "skipped";
                                    }
                                    return "skipped";
                                  }());
    if (!remarksEnabled())
      return;
    Remark R = VO.K == ValidationOutcome::Kind::Mismatch
                   ? Remark::missed(Name, "ValidationFailed")
                   : Remark::analysis(Name,
                                      VO.K == ValidationOutcome::Kind::Proven
                                          ? "Validated"
                                          : "ValidationSkipped");
    R.in(Prog.entry().Name)
        .at(firstCallLoc(Prog.entry()))
        .note(VO.K == ValidationOutcome::Kind::Proven
                  ? "pass proven semantics-preserving by BDD output-cone "
                    "equivalence"
              : VO.K == ValidationOutcome::Kind::CheckedRandom
                  ? "proof tier unavailable; pass survived the random "
                    "differential tier"
              : VO.K == ValidationOutcome::Kind::Mismatch
                  ? "pass changed the entry function's semantics"
                  : "validation could not model this program")
        .arg("outcome", validationKindName(VO.K))
        .arg("bdd_nodes", VO.BddNodes)
        .arg("random_vectors", VO.RandomVectors);
    if (!VO.Detail.empty())
      R.arg("detail", VO.Detail);
    RemarkEngine::instance().record(std::move(R));
  }

  /// The graceful degradation on a validation mismatch: restore the
  /// mid-end checkpoint (undoing every kept mid-end pass — their Kept
  /// flags and SkippedPasses entries follow suit) and refuse whatever
  /// optional passes remain. The caller already rolled back and skipped
  /// the lying pass itself.
  void demoteToO0(const char *Name) {
    Demoted = true;
    DemoteReason = "compile demoted to -O0: pass '" + std::string(Name) +
                   "' failed translation validation";
    if (MidEndSnapshot) {
      Prog = std::move(*MidEndSnapshot);
      MidEndSnapshot.reset();
      for (size_t I = MidEndStatsBase; I < Stats.size(); ++I)
        if (Stats[I].Kept) {
          Stats[I].Kept = false;
          Skipped.push_back(Stats[I].Name);
        }
    }
    Skipped.push_back("demote-to-O0");
    Diags.warning({}, DemoteReason +
                          "; the kernel is unoptimized but correct");
    if (telemetryEnabled())
      Telemetry::instance().count("usubac.validate.demoted");
    if (remarksEnabled())
      RemarkEngine::instance().record(
          Remark::missed("validator", "DemotedToO0")
              .in(Prog.entry().Name)
              .at(firstCallLoc(Prog.entry()))
              .note(DemoteReason)
              .arg("pass", Name));
  }

  U0Program &Prog;
  const CompileOptions &Options;
  DiagnosticEngine &Diags;
  std::vector<std::string> &Skipped;
  std::vector<PassStat> &Stats;
  const bool Validate;
  bool Demoted = false;
  std::string DemoteReason;
  std::optional<U0Program> MidEndSnapshot;
  size_t MidEndStatsBase = 0;
  std::chrono::steady_clock::time_point Deadline;
};

std::optional<CompiledKernel> compileAstImpl(ast::Program Prog,
                                             const CompileOptions &Options,
                                             DiagnosticEngine &Diags) {
  TelemetrySpan CompileSpan("usubac.compile");
  const Arch &Target = Options.Target ? *Options.Target : archGP64();
  // Capture the remark high-water mark so CompiledKernel::Remarks holds
  // exactly this compile's slice (concurrent compiles may interleave in
  // the global buffer; a slice that includes a neighbor's remarks is
  // still correct attribution-wise since every remark names its pass and
  // function).
  const size_t RemarkBase =
      remarksEnabled() ? RemarkEngine::instance().size() : 0;

  // --- Front-end (Section 3.1) -------------------------------------------
  if (!expandProgram(Prog, Diags, Options.Budgets.MaxUnrolledEquations) ||
      !elaborateTables(Prog, Diags, Options.Budgets.MaxBddNodes))
    return std::nullopt;
  monomorphizeProgram(Prog, Options.Direction, Options.WordBits);
  if (Options.Bitslice)
    flattenProgram(Prog);
  if (!checkProgram(Prog, Target, Diags))
    return std::nullopt;

  CompiledKernel Result;
  for (const ast::VarDecl &P : Prog.entry().Params)
    Result.ParamTypes.push_back(P.Ty);
  for (const ast::VarDecl &R : Prog.entry().Returns)
    Result.ReturnTypes.push_back(R.Ty);

  // The atom word size of the monomorphic program is derived from the
  // declarations themselves (the -w flag only resolves 'm): a program may
  // use one atom size m, optionally alongside single bits. Mixed sizes
  // above one bit would need per-instruction element widths, which the
  // instruction sets of Table 1 do not offer either.
  unsigned MBits = 1;
  SourceLoc MBitsLoc;
  for (const ast::Node &N : Prog.Nodes)
    for (const auto *List : {&N.Params, &N.Returns, &N.Vars})
      for (const ast::VarDecl &D : *List) {
        unsigned Bits = D.Ty.scalarType().wordSize().Bits;
        if (Bits == 1)
          continue;
        if (MBits != 1 && MBits != Bits) {
          Diags.error(D.Loc,
                      "program mixes atom sizes " + std::to_string(MBits) +
                          " and " + std::to_string(Bits) +
                          "; a sliced program has a single element width");
          return std::nullopt;
        }
        MBits = Bits;
        MBitsLoc = D.Loc;
      }
  if (MBits != 1 && !isPowerOf2(MBits)) {
    Diags.error(MBitsLoc, "atom size " + std::to_string(MBits) +
                              " is not a power of two; no packed layout "
                              "exists");
    return std::nullopt;
  }

  U0Program U0 = normalizeProgram(Prog, Options.Direction, MBits, Target,
                                  /*RoundBarriers=*/!Options.Unroll);
  cleanupProgram(U0);

  // Register pressure is measured on the dependency-ordered code, before
  // scheduling stretches live ranges, and counts temporaries only (inputs
  // model memory-resident operands). This reproduces the paper's counts
  // ("Serpent and Rectangle use respectively 8 and 7 AVX registers").
  {
    U0Program Pressure = U0;
    if (inlineAllCalls(Pressure, Options.Budgets.MaxInstrs))
      cleanupProgram(Pressure);
    Result.MaxLive =
        maxLiveRegisters(Pressure.entry(), /*CountInputs=*/false);
  }

  // --- Back-end (Section 3.2) --------------------------------------------
  // Every optimization below runs under a verified checkpoint (see
  // CheckpointedPassRunner). Passes required for execution — barrier
  // stripping and the final whole-program verification — stay outside it.
  bool BitsliceMode = MBits == 1;
  CheckpointedPassRunner Runner(U0, Options, Diags, Result.SkippedPasses,
                                Result.PassStats);
  auto NoRefusal = [](auto Fn) {
    return [Fn](U0Program &P) {
      Fn(P);
      return std::string();
    };
  };

  if (BitsliceMode && Options.Schedule)
    // The bitslice scheduler works on the call structure (Algorithm 1
    // applies "regardless of whether those functions will be inlined"),
    // so run it before inlining.
    Runner.run("schedule-bitslice", NoRefusal([&Options](U0Program &P) {
                 BitsliceScheduleStats SS;
                 scheduleBitslice(P.entry(), remarksEnabled() ? &SS : nullptr,
                                  Options.ScheduleObjective);
                 if (remarksEnabled())
                   RemarkEngine::instance().record(
                       Remark::passed("schedule-bitslice", "Algorithm1")
                           .in(P.entry().Name)
                           .at(firstCallLoc(P.entry()))
                           .note("scheduled call arguments and result "
                                 "consumers next to their calls to shrink "
                                 "live ranges")
                           .arg("objective",
                                Options.ScheduleObjective ==
                                        ScheduleObjective::Depth
                                    ? "depth"
                                    : "window")
                           .arg("segments", SS.Segments)
                           .arg("calls", SS.Calls)
                           .arg("consumers_hoisted", SS.ConsumersHoisted)
                           .arg("instructions_moved", SS.Moved)
                           .arg("critical_path", SS.CriticalPathLen)
                           .arg("depth_hoists", SS.DepthHoists));
               }));
  if (Options.Inline)
    Runner.run("inline", [&](U0Program &P) {
      unsigned Calls = 0;
      if (remarksEnabled())
        for (const U0Function &F : P.Funcs)
          for (const U0Instr &I : F.Instrs)
            Calls += I.Op == U0Op::Call;
      if (!inlineAllCalls(P, Options.Budgets.MaxInstrs)) {
        if (remarksEnabled())
          RemarkEngine::instance().record(
              Remark::missed("inline", "InstrBudget")
                  .in(P.entry().Name)
                  .at(firstCallLoc(P.entry()))
                  .note("projected inlined size exceeds the instruction "
                        "budget")
                  .arg("max_instrs", Options.Budgets.MaxInstrs)
                  .arg("calls", Calls));
        return std::string(
            "projected inlined size exceeds the instruction budget");
      }
      if (remarksEnabled())
        RemarkEngine::instance().record(
            Remark::passed("inline", "AllCallsInlined")
                .in(P.entry().Name)
                .at(firstCallLoc(P.entry()))
                .note("every call inlined; the entry is straight-line code")
                .arg("calls_inlined", Calls)
                .arg("entry_instrs", P.entry().Instrs.size()));
      return std::string();
    });
  // --- Mid-end (src/core/Optimizer.h) ------------------------------------
  // Classic scalar optimizations over the (usually inlined) straight-line
  // code: the inliner's Mov chains, the constants the front-end reduced
  // to, redundant gates from table synthesis, and the dead cones all
  // three leave behind. Each pass is checkpointed and individually
  // toggleable, and never grows the code — the pre/post entry counts are
  // surfaced as InstrCountPreOpt/InstrCount.
  Result.InstrCountPreOpt = U0.entry().Instrs.size();
  Runner.markMidEndStart();
  if (Options.CopyProp)
    Runner.run("copy-prop", NoRefusal([](U0Program &P) {
                 unsigned Removed = 0;
                 for (U0Function &F : P.Funcs)
                   Removed += propagateCopies(F);
                 if (remarksEnabled())
                   RemarkEngine::instance().record(
                       Remark::passed("copy-prop", "MovChainsCollapsed")
                           .in(P.entry().Name)
                           .at(firstCallLoc(P.entry()))
                           .note("every use of a mov destination rerouted "
                                 "to the mov's root source")
                           .arg("movs_removed", Removed)
                           .arg("instr_delta",
                                -static_cast<int64_t>(Removed)));
               }));
  if (Options.ConstantFold)
    Runner.run("constant-fold", NoRefusal([](U0Program &P) {
                 ConstFoldStats Total;
                 for (U0Function &F : P.Funcs) {
                   ConstFoldStats S;
                   foldConstants(F, P.Direction, P.MBits, &S);
                   Total.Folded += S.Folded;
                   Total.Simplified += S.Simplified;
                 }
                 if (remarksEnabled())
                   RemarkEngine::instance().record(
                       Remark::passed("constant-fold", "FoldAndSimplify")
                           .in(P.entry().Name)
                           .at(firstCallLoc(P.entry()))
                           .note("constants folded and algebraic "
                                 "identities applied in place; dce "
                                 "collects the freed operands")
                           .arg("folded_to_const", Total.Folded)
                           .arg("simplified", Total.Simplified)
                           .arg("instr_delta", 0));
               }));
  if (Options.Cse)
    Runner.run("cse", NoRefusal([](U0Program &P) {
                 unsigned Removed = 0;
                 for (U0Function &F : P.Funcs)
                   Removed += valueNumber(F);
                 if (remarksEnabled())
                   RemarkEngine::instance().record(
                       Remark::passed("cse", "ValueNumbering")
                           .in(P.entry().Name)
                           .at(firstCallLoc(P.entry()))
                           .note("hash-based local value numbering: "
                                 "repeated computations rerouted to their "
                                 "first occurrence")
                           .arg("removed", Removed)
                           .arg("instr_delta",
                                -static_cast<int64_t>(Removed)));
               }));
  if (Options.Dce)
    Runner.run("dce", NoRefusal([](U0Program &P) {
                 unsigned Removed = 0;
                 for (U0Function &F : P.Funcs) {
                   Removed += sweepDeadCode(F);
                   compactRegisters(F);
                 }
                 if (remarksEnabled())
                   RemarkEngine::instance().record(
                       Remark::passed("dce", "MarkAndSweep")
                           .in(P.entry().Name)
                           .at(firstCallLoc(P.entry()))
                           .note("definitions unreachable from the "
                                 "outputs swept")
                           .arg("removed", Removed)
                           .arg("instr_delta",
                                -static_cast<int64_t>(Removed)));
               }));
  if (!BitsliceMode && Options.Schedule)
    Runner.run("schedule-mslice", NoRefusal([&](U0Program &P) {
                 MSliceScheduleStats SS;
                 scheduleMSlice(P.entry(), Target,
                                remarksEnabled() ? &SS : nullptr,
                                Options.ScheduleObjective);
                 if (remarksEnabled())
                   RemarkEngine::instance().record(
                       Remark::passed("schedule-mslice", "LookBehindWindow")
                           .in(P.entry().Name)
                           .at(firstCallLoc(P.entry()))
                           .note("greedy list scheduling around data "
                                 "hazards and the shuffle port")
                           .arg("objective",
                                Options.ScheduleObjective ==
                                        ScheduleObjective::Depth
                                    ? "depth"
                                    : "window")
                           .arg("segments", SS.Segments)
                           .arg("window_limit", SS.WindowLimit)
                           .arg("window_hits", SS.WindowHits)
                           .arg("window_misses", SS.WindowMisses)
                           .arg("forced_picks", SS.ForcedPicks)
                           .arg("max_lookahead", SS.MaxLookahead)
                           .arg("critical_path", SS.CriticalPathLen)
                           .arg("depth_hoists", SS.DepthHoists));
               }));
  if (Options.FuseAndn)
    Runner.run("fuse-andn", NoRefusal([](U0Program &P) {
                 unsigned Fused = 0;
                 for (U0Function &F : P.Funcs)
                   Fused += fuseAndNot(F);
                 if (remarksEnabled())
                   RemarkEngine::instance().record(
                       Remark::analysis("fuse-andn", "Peephole")
                           .in(P.entry().Name)
                           .at(firstCallLoc(P.entry()))
                           .note("single-use Not+And pairs fused into andn")
                           .arg("fused", Fused));
               }));
  if (Options.Interleave)
    Runner.run("interleave", [&](U0Program &P) {
      unsigned Factor = Options.InterleaveFactorOverride
                            ? Options.InterleaveFactorOverride
                            : interleaveFactorFor(Result.MaxLive, Target);
      if (Factor > 1 && Options.Budgets.MaxInstrs &&
          P.entry().Instrs.size() * Factor > Options.Budgets.MaxInstrs) {
        if (remarksEnabled())
          RemarkEngine::instance().record(
              Remark::missed("interleave", "InstrBudget")
                  .in(P.entry().Name)
                  .at(firstCallLoc(P.entry()))
                  .note("interleaving exceeds the instruction budget")
                  .arg("factor", Factor)
                  .arg("max_instrs", Options.Budgets.MaxInstrs));
        return std::string("interleaving by factor " +
                           std::to_string(Factor) +
                           " exceeds the instruction budget");
      }
      interleaveEntry(P, Factor);
      if (remarksEnabled())
        RemarkEngine::instance().record(
            Remark::passed("interleave", "FactorChosen")
                .in(P.entry().Name)
                .at(firstCallLoc(P.entry()))
                .note(Options.InterleaveFactorOverride
                          ? "interleave factor forced by override"
                          : "interleave factor from the registers / "
                            "max-live heuristic")
                .arg("factor", Factor)
                .arg("max_live", Result.MaxLive)
                .arg("target_registers", Target.NumRegisters));
      return std::string();
    });

  for (U0Function &F : U0.Funcs)
    stripBarriers(F);

  // A failure here is a compiler bug, not a user error: the checkpoints
  // above guarantee every optimization left well-formed IR, so only the
  // mandatory tail (or normalization itself) can be at fault. Report it
  // as a fatal diagnostic and honor the std::optional contract instead of
  // aborting the host process.
  std::string VerifyError = verifyU0(U0);
  if (!VerifyError.empty()) {
    Diags.fatal({}, "internal compiler error: pipeline produced ill-formed "
                    "Usuba0: " +
                        VerifyError);
    return std::nullopt;
  }
  if (!verifyConstantTime(U0)) {
    Diags.fatal({}, "internal compiler error: pipeline produced "
                    "non-constant-time Usuba0");
    return std::nullopt;
  }

  Result.InstrCount = U0.entry().Instrs.size();
  Result.KernelGates = countKernelGates(U0.entry());
  Result.KernelDepth = criticalPathLength(U0.entry());
  Result.Prog = std::move(U0);
  if (remarksEnabled())
    Result.Remarks = RemarkEngine::instance().snapshotSince(RemarkBase);
  return Result;
}

} // namespace

std::optional<CompiledKernel>
usuba::compileUsuba(std::string_view Source, const CompileOptions &Options,
                    DiagnosticEngine &Diags) {
  std::optional<ast::Program> Prog = parseProgram(Source, Diags);
  if (!Prog)
    return std::nullopt;
  return compileAst(std::move(*Prog), Options, Diags);
}

std::optional<CompiledKernel> usuba::compileAst(ast::Program Prog,
                                                const CompileOptions &Options,
                                                DiagnosticEngine &Diags) {
  // The ICE boundary: any USUBA_ICE raised by the front-end, normalization
  // or a non-checkpointed pass unwinds to here and becomes a fatal
  // diagnostic — callers keep the "std::nullopt + diagnostics" contract
  // even for compiler bugs, in every build type.
  try {
    return compileAstImpl(std::move(Prog), Options, Diags);
  } catch (const InternalCompilerError &E) {
    Diags.fatal({}, E.str());
    return std::nullopt;
  }
}
