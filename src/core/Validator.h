//===- Validator.h - Translation validation for Usuba0 passes ---*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-compile translation validation in the Vale/CompCert tradition: for
/// every checkpointed back-end pass, prove that the pass preserved the
/// semantics of the entry function by canonicalizing the pre- and
/// post-pass output cones as BDDs (circuits/Bdd.h) and comparing roots.
/// Hash-consing makes the comparison exact: equal roots iff equivalent
/// functions, over *all* inputs.
///
/// The proof works on a reduced per-atom model justified by the lanewise
/// structure of the IR (see DESIGN.md section 6g):
///  * vertical / bitsliced programs: every operation acts on each m-bit
///    element independently and identically, so one symbolic element of m
///    bits models every slice;
///  * horizontal programs: every operation treats the g bits within a
///    position identically (logic is bitwise, Const fills whole positions,
///    Shuffle moves whole positions), so m symbolic positions of one bit
///    each model the full register.
///
/// Three-tier outcome: small cones are *Proven* (or refuted) by BDD
/// equivalence; when the cone exceeds the node budget or the input-bit
/// cap, the validator falls back to a deterministic random differential
/// check over the same reduced model (*CheckedRandom* — an effective lie
/// detector, not a proof — the skip reason records why the proof tier was
/// unavailable); programs using an op/direction combination outside the
/// reduced model are *Skipped* entirely. A semantic difference found by
/// either tier is a *Mismatch*; the compiler reacts by demoting the
/// compile to -O0 (see CheckpointedPassRunner in Compiler.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_VALIDATOR_H
#define USUBA_CORE_VALIDATOR_H

#include "core/Usuba0.h"

#include <cstddef>
#include <string>

namespace usuba {

/// What validating one pass concluded.
struct ValidationOutcome {
  enum class Kind : uint8_t {
    /// BDD canonical forms of every output bit are identical: the pass is
    /// semantics-preserving on all inputs.
    Proven,
    /// The proof tier was unavailable (Detail records why: node budget,
    /// input-bit cap); the pass survived the random differential tier.
    CheckedRandom,
    /// The pass changed the entry function's semantics. Detail names the
    /// first differing output bit.
    Mismatch,
    /// Validation could not model the program at all (Detail records the
    /// unsupported construct). No judgement either way.
    Skipped,
  };

  Kind K = Kind::Skipped;
  /// Skip/fallback reason, or the mismatch witness.
  std::string Detail;
  /// Nodes the proof attempt allocated (0 when it never started).
  size_t BddNodes = 0;
  /// Random input vectors compared on the fallback tier.
  unsigned RandomVectors = 0;
};

const char *validationKindName(ValidationOutcome::Kind K);

/// Validates that \p After computes the same entry function as \p Before.
/// Both programs must be well-formed (verifyU0); the caller is the
/// checkpointed pass runner, which verified the post-pass program already.
/// \p MaxBddNodes bounds the proof tier (CompileOptions::Budgets
/// .MaxBddNodes); 0 disables the bound.
ValidationOutcome validateTransformation(const U0Program &Before,
                                         const U0Program &After,
                                         size_t MaxBddNodes);

/// The input-bit cap above which the proof tier is not attempted
/// (entry inputs x model bits): real ciphers blow the BDD budget slowly
/// and expensively, so the validator goes straight to the random tier.
constexpr unsigned ValidatorMaxInputBits = 512;

/// The far tighter cap applied when the program carries Mul. Add/Sub
/// ripple carries are linear under the validator's interleaved variable
/// order (bit b of every register adjacent) and use the general cap;
/// multiplication's middle output bits are exponential under every
/// variable order, so Mul cones go straight to the random tier instead
/// of grinding the node budget.
constexpr unsigned ValidatorMaxMulInputBits = 24;

} // namespace usuba

#endif // USUBA_CORE_VALIDATOR_H
