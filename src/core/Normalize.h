//===- Normalize.h - Lowering the AST to Usuba0 -----------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowering of a checked, monomorphic Usuba program to Usuba0 three-
/// address code: vectors are flattened into one virtual register per atom;
/// wiring expressions (indexing, tuples, vector shifts/rotates/shuffles)
/// become register renamings (Movs, erased later by copy propagation);
/// word-level operators become instructions; atom shifts in horizontal
/// direction become Shuffle instructions.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_NORMALIZE_H
#define USUBA_CORE_NORMALIZE_H

#include "core/Usuba0.h"
#include "frontend/Ast.h"

namespace usuba {

/// Lowers \p Prog (which must have passed checkProgram for \p Target at
/// this direction/word size). When \p RoundBarriers is set, a Barrier
/// instruction is inserted between equations of different top-level
/// `forall` iterations of each node, modelling a not-unrolled round loop
/// for the schedulers.
U0Program normalizeProgram(const ast::Program &Prog, Dir Direction,
                           unsigned MBits, const Arch &Target,
                           bool RoundBarriers);

} // namespace usuba

#endif // USUBA_CORE_NORMALIZE_H
