//===- Passes.h - Usuba0 back-end passes ------------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back-end of Usubac (paper Section 3.2): optimizations over Usuba0
/// that exploit referential transparency and the absence of control flow.
/// Every pass preserves the single-assignment structure (checked by
/// verifyU0 in tests and by the property-based pipeline tests).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_PASSES_H
#define USUBA_CORE_PASSES_H

#include "core/Usuba0.h"

namespace usuba {

/// Erases Movs by rerouting their uses to the source register. This is
/// what makes Usuba's static wiring (vector shifts, permutations, tuple
/// plumbing) free at run time.
void copyPropagate(U0Function &F);

/// Removes instructions none of whose results reach an output (calls are
/// pure, so dead calls are removed too).
void eliminateDeadCode(U0Function &F);

/// Renumbers registers densely after copy propagation / DCE. Inputs keep
/// their ABI positions 0..NumInputs-1.
void compactRegisters(U0Function &F);

/// Runs copyPropagate, eliminateDeadCode and compactRegisters on every
/// function of \p Prog.
void cleanupProgram(U0Program &Prog);

/// Inlines every call in every function (callees precede callers, so one
/// forward sweep suffices). After this pass the entry function is pure
/// straight-line code. The paper motivates this aggressively for bitsliced
/// code, where a round function takes hundreds of register arguments.
///
/// When \p MaxInstrs is nonzero, the fully inlined size is projected
/// first; if any function would exceed the budget the program is left
/// untouched and false is returned (resource guard — the interpreter and
/// C backend both handle residual calls).
bool inlineAllCalls(U0Program &Prog, size_t MaxInstrs = 0);

/// Fuses `t = ~x; d = t & y` into `d = x &~ y` when the Not has a single
/// use (pandn/vpandn on every x86 SIMD level). Returns the number of
/// fusions performed.
unsigned fuseAndNot(U0Function &F);

/// Common-subexpression elimination: structurally identical instructions
/// (same opcode, operands, immediate/amount/pattern) compute the same
/// value — referential transparency makes this trivially sound in
/// Usuba0. Mostly fires on circuits instantiated several times over
/// shared inputs. Returns the number of instructions removed.
unsigned eliminateCommonSubexpressions(U0Function &F);

/// Maximum number of simultaneously live registers under the current
/// instruction order (straight-line liveness). When \p CountInputs is
/// false, input registers are excluded: they model memory-resident
/// operands (key material lives in arrays, not architectural registers),
/// which is how the paper arrives at "Rectangle uses 7 registers".
unsigned maxLiveRegisters(const U0Function &F, bool CountInputs = true);

/// The interleaving factor the paper's heuristic picks: target registers
/// divided by the kernel's maximum live temporaries, clamped to [1, 4]
/// (larger factors would spill). Returns 1 when the kernel already uses
/// most registers.
unsigned interleaveFactorFor(unsigned MaxLive, const Arch &Target);

/// Statically interleaves \p Factor independent instances of the entry
/// function (Section 3.2: a static form of hyper-threading), alternating
/// blocks of \p BlockSize instructions. The entry ABI becomes Factor
/// concatenated copies of inputs and outputs; Prog.InterleaveFactor is
/// multiplied accordingly.
void interleaveEntry(U0Program &Prog, unsigned Factor,
                     unsigned BlockSize = 10);

/// What the schedulers optimize for. Window (the default) reproduces the
/// paper's heuristics exactly: program order except where a stall or port
/// conflict forces a deviation. Depth prefers instructions on the
/// critical path — the longest chain of dependent non-Mov instructions —
/// exposing more ILP for deep circuits at the price of longer live
/// ranges. Both produce semantically identical kernels (differentially
/// tested); only the instruction order differs.
enum class ScheduleObjective : uint8_t { Window, Depth };

/// Length of the longest chain of dependent instructions in \p F's
/// straight-line code, counting Mov/Barrier as free wiring and every
/// other instruction as one level. This is the kernel's logic depth —
/// the latency lower bound at infinite ILP.
unsigned criticalPathLength(const U0Function &F);

/// Number of instructions in \p F that do real work at run time
/// (everything except Mov/Const/Barrier) — the kernel's logic-gate
/// count, the companion width metric to criticalPathLength's depth.
size_t countKernelGates(const U0Function &F);

/// Decision counters from one scheduleBitslice run, reported as
/// optimization remarks by the compiler driver.
struct BitsliceScheduleStats {
  unsigned Segments = 0;         ///< barrier-delimited segments scheduled
  unsigned Calls = 0;            ///< calls anchoring Algorithm 1
  unsigned ConsumersHoisted = 0; ///< result consumers scheduled while hot
  unsigned Moved = 0;            ///< instructions whose position changed
  unsigned CriticalPathLen = 0;  ///< longest dependence chain seen
  unsigned DepthHoists = 0;      ///< reorderings made for the critical path
};

/// The bitslice scheduler (paper Algorithm 1): shrinks live ranges of
/// call arguments and results to reduce spilling. Operates on the
/// pre-inlining call structure; barriers delimit independently scheduled
/// segments. Under ScheduleObjective::Depth, hoisted consumers are
/// ordered by remaining critical-path height instead of program order.
void scheduleBitslice(U0Function &F, BitsliceScheduleStats *Stats = nullptr,
                      ScheduleObjective Objective = ScheduleObjective::Window);

/// Decision counters from one scheduleMSlice run: how often the window
/// found a hazard-free (and port-clean) candidate vs how often it had to
/// accept a conflict, plus how deep into the ready set it looked.
struct MSliceScheduleStats {
  unsigned Segments = 0;     ///< barrier-delimited segments scheduled
  unsigned WindowHits = 0;   ///< picks with no hazard and no port conflict
  unsigned WindowMisses = 0; ///< picks accepting a shuffle-port conflict
  unsigned ForcedPicks = 0;  ///< picks forced despite a data hazard
  unsigned WindowLimit = 0;  ///< look-behind window size used
  unsigned MaxLookahead = 0; ///< deepest scan into the ready set
  unsigned CriticalPathLen = 0; ///< longest dependence chain seen
  unsigned DepthHoists = 0;  ///< picks that jumped the program order for depth
};

/// The m-slice scheduler (Section 3.2): greedy list scheduling with a
/// 16-instruction look-behind window, avoiding data hazards and
/// consecutive dispatches to the same (modelled) execution unit — the
/// shuffle unit is the scarce one on Skylake. Under
/// ScheduleObjective::Depth, among the acceptable candidates of a pass
/// the one with the greatest remaining critical-path height wins instead
/// of the first in program order.
void scheduleMSlice(U0Function &F, const Arch &Target,
                    MSliceScheduleStats *Stats = nullptr,
                    ScheduleObjective Objective = ScheduleObjective::Window);

/// Removes Barrier instructions (done after scheduling, before
/// execution/emission).
void stripBarriers(U0Function &F);

} // namespace usuba

#endif // USUBA_CORE_PASSES_H
