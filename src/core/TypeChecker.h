//===- TypeChecker.h - Usuba type checking ----------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Type checking of a monomorphized Usuba program (paper Section 2.3):
///
///  * every expression is typed as (scalar atom type, flattened length);
///  * operators resolve through the Logic/Arith/Shift type classes against
///    the target architecture (Table 1) — "well-typed programs do always
///    vectorize";
///  * indices and bounds are compile-time and range-checked;
///  * every variable element is defined exactly once and every read
///    element has a definition (dataflow well-formedness);
///  * the equation system is well-founded: equations are topologically
///    sorted (in place) so later stages can emit straight-line code;
///    cycles are a type error (Usuba forbids feedback).
///
/// checkProgram expects tables/perms already elaborated, foralls expanded
/// and types monomorphic (see AstPasses.h).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_TYPECHECKER_H
#define USUBA_CORE_TYPECHECKER_H

#include "frontend/Ast.h"
#include "support/Diagnostics.h"
#include "types/Arch.h"

namespace usuba {

/// Checks \p Prog against \p Target and sorts each node's equations into
/// dependency order. Returns false (with diagnostics) on any violation.
bool checkProgram(ast::Program &Prog, const Arch &Target,
                  DiagnosticEngine &Diags);

/// Convenience query used by the slicing-exploration tooling: report
/// whether the (already parsed, un-monomorphized) program would type-check
/// at the given slicing. Runs the full front-end on a clone of \p Prog.
/// On failure, \p WhyNot receives the first diagnostic.
bool slicingSupported(const ast::Program &Prog, Dir Direction,
                      unsigned MBits, bool Flatten, const Arch &Target,
                      std::string *WhyNot = nullptr);

} // namespace usuba

#endif // USUBA_CORE_TYPECHECKER_H
