//===- Usuba0.cpp - The monomorphic core IR -------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Usuba0.h"

#include <map>

using namespace usuba;

const char *usuba::u0OpName(U0Op Op) {
  switch (Op) {
  case U0Op::Mov:
    return "mov";
  case U0Op::Const:
    return "const";
  case U0Op::Not:
    return "not";
  case U0Op::And:
    return "and";
  case U0Op::Or:
    return "or";
  case U0Op::Xor:
    return "xor";
  case U0Op::Andn:
    return "andn";
  case U0Op::Add:
    return "add";
  case U0Op::Sub:
    return "sub";
  case U0Op::Mul:
    return "mul";
  case U0Op::Lshift:
    return "shl";
  case U0Op::Rshift:
    return "shr";
  case U0Op::Lrotate:
    return "rotl";
  case U0Op::Rrotate:
    return "rotr";
  case U0Op::Shuffle:
    return "shuffle";
  case U0Op::Call:
    return "call";
  case U0Op::Barrier:
    return "barrier";
  }
  return "?";
}

bool usuba::isShuffleLike(U0Op Op) { return Op == U0Op::Shuffle; }

bool usuba::isArithOp(U0Op Op) {
  return Op == U0Op::Add || Op == U0Op::Sub || Op == U0Op::Mul;
}

bool usuba::isLogicOp(U0Op Op) {
  switch (Op) {
  case U0Op::Mov:
  case U0Op::Const:
  case U0Op::Not:
  case U0Op::And:
  case U0Op::Or:
  case U0Op::Xor:
  case U0Op::Andn:
    return true;
  default:
    return false;
  }
}

static std::string instrStr(const U0Instr &I) {
  std::string Out;
  for (size_t D = 0; D < I.Dests.size(); ++D) {
    if (D != 0)
      Out += ", ";
    Out += "r" + std::to_string(I.Dests[D]);
  }
  if (!I.Dests.empty())
    Out += " = ";
  Out += u0OpName(I.Op);
  if (I.Op == U0Op::Call)
    Out += " f" + std::to_string(I.Callee);
  for (unsigned S : I.Srcs)
    Out += " r" + std::to_string(S);
  if (I.Op == U0Op::Const)
    Out += " #" + std::to_string(I.Imm);
  if (I.Op == U0Op::Lshift || I.Op == U0Op::Rshift ||
      I.Op == U0Op::Lrotate || I.Op == U0Op::Rrotate)
    Out += " #" + std::to_string(I.Amount);
  if (I.Op == U0Op::Shuffle) {
    Out += " [";
    for (size_t P = 0; P < I.Pattern.size(); ++P) {
      if (P != 0)
        Out += ",";
      Out += std::to_string(I.Pattern[P]);
    }
    Out += "]";
  }
  return Out;
}

std::string U0Function::str(bool WithLocs) const {
  std::string Out = "func " + Name + " (inputs " +
                    std::to_string(NumInputs) + ", regs " +
                    std::to_string(NumRegs) + ")\n";
  for (const U0Instr &I : Instrs) {
    Out += "  " + instrStr(I);
    if (WithLocs && I.Loc.isValid())
      Out += " ; ua:" + I.Loc.str();
    Out += "\n";
  }
  Out += "  ret";
  for (unsigned R : Outputs)
    Out += " r" + std::to_string(R);
  Out += "\n";
  return Out;
}

std::string U0Program::str(bool WithLocs) const {
  std::string Out;
  for (const U0Function &F : Funcs) {
    Out += F.str(WithLocs);
    Out += "\n";
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

static std::string verifyFunction(const U0Program &Prog,
                                  const U0Function &F) {
  auto Fail = [&](const std::string &Why) {
    return "in function '" + F.Name + "': " + Why;
  };
  if (F.NumInputs > F.NumRegs)
    return Fail("more inputs than registers");

  std::vector<bool> Defined(F.NumRegs, false);
  for (unsigned I = 0; I < F.NumInputs; ++I)
    Defined[I] = true;

  for (const U0Instr &I : F.Instrs) {
    // Operand shape per opcode.
    size_t WantSrcs = 0, WantDests = 1;
    switch (I.Op) {
    case U0Op::Const:
      WantSrcs = 0;
      break;
    case U0Op::Mov:
    case U0Op::Not:
    case U0Op::Lshift:
    case U0Op::Rshift:
    case U0Op::Lrotate:
    case U0Op::Rrotate:
    case U0Op::Shuffle:
      WantSrcs = 1;
      break;
    case U0Op::And:
    case U0Op::Or:
    case U0Op::Xor:
    case U0Op::Andn:
    case U0Op::Add:
    case U0Op::Sub:
    case U0Op::Mul:
      WantSrcs = 2;
      break;
    case U0Op::Barrier:
      if (!I.Dests.empty() || !I.Srcs.empty())
        return Fail("barrier with operands");
      continue;
    case U0Op::Call: {
      if (I.Callee >= Prog.Funcs.size())
        return Fail("call to out-of-range function");
      const U0Function &Callee = Prog.Funcs[I.Callee];
      if (&Callee == &F)
        return Fail("recursive call");
      if (I.Srcs.size() != Callee.NumInputs)
        return Fail("call argument count mismatch for '" + Callee.Name +
                    "'");
      if (I.Dests.size() != Callee.Outputs.size())
        return Fail("call result count mismatch for '" + Callee.Name + "'");
      WantSrcs = I.Srcs.size();
      WantDests = I.Dests.size();
      break;
    }
    }
    if (I.Op != U0Op::Call &&
        (I.Srcs.size() != WantSrcs || I.Dests.size() != WantDests))
      return Fail(std::string("bad operand count for ") + u0OpName(I.Op));
    if (I.Op == U0Op::Shuffle && I.Pattern.empty())
      return Fail("shuffle with empty pattern");

    for (unsigned S : I.Srcs) {
      if (S >= F.NumRegs)
        return Fail("source register out of range");
      if (!Defined[S])
        return Fail("use of r" + std::to_string(S) + " before definition");
    }
    for (unsigned D : I.Dests) {
      if (D >= F.NumRegs)
        return Fail("destination register out of range");
      if (Defined[D])
        return Fail("second definition of r" + std::to_string(D));
      Defined[D] = true;
    }
  }
  for (unsigned R : F.Outputs) {
    if (R >= F.NumRegs)
      return Fail("output register out of range");
    if (!Defined[R])
      return Fail("undefined output register r" + std::to_string(R));
  }
  return "";
}

std::string usuba::verifyU0(const U0Program &Prog) {
  if (Prog.Funcs.empty())
    return "program has no functions";
  if (Prog.MBits < 1)
    return "invalid atom word size";
  for (const U0Function &F : Prog.Funcs) {
    std::string Err = verifyFunction(Prog, F);
    if (!Err.empty())
      return Err;
  }
  return "";
}

bool usuba::verifyConstantTime(const U0Program &Prog) {
  // The whitelist is the whole U0Op enum: by construction the IR has no
  // branch, no comparison producing control flow, and no memory access
  // whatsoever (registers are virtual and indices are compile-time). The
  // check therefore reduces to "the program is well-formed".
  return verifyU0(Prog).empty();
}
