//===- Compiler.h - The Usubac driver ---------------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end Usubac pipeline (paper Section 3): front-end
/// (parse, forall expansion, table elaboration, monomorphization or
/// flattening, type checking) followed by normalization to Usuba0 and the
/// back-end optimizations (inlining, scheduling, interleaving). Every
/// optimization is individually toggleable — the ablation benches sweep
/// them to regenerate Table 2 and the Section 3.2 numbers.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CORE_COMPILER_H
#define USUBA_CORE_COMPILER_H

#include "core/Passes.h"
#include "core/Usuba0.h"
#include "frontend/Ast.h"
#include "support/Diagnostics.h"
#include "support/Remarks.h"

#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace usuba {

struct PassStat;

/// Compilation flags, mirroring the Usubac command line.
struct CompileOptions {
  /// -V / -H: slicing direction the direction parameter 'D resolves to.
  Dir Direction = Dir::Vert;
  /// -w m: the atom word size the parameter 'm resolves to. Programs with
  /// only fixed word sizes may leave it 0.
  unsigned WordBits = 0;
  /// -B: flatten to bitslice after monomorphization.
  bool Bitslice = false;
  /// Target instruction set (Table 1 instance resolution + code
  /// generation).
  const Arch *Target = nullptr;

  // Back-end toggles (Section 3.2 / Table 2 columns).
  bool Inline = true;
  bool Unroll = true;
  bool Interleave = false;
  bool Schedule = true;
  /// What the schedulers optimize for (usubac -fschedule=window|depth):
  /// Window reproduces the paper's stay-close-to-program-order
  /// heuristics; Depth prefers the critical path. Semantically
  /// equivalent (differentially tested); only the instruction order
  /// differs.
  usuba::ScheduleObjective ScheduleObjective =
      usuba::ScheduleObjective::Window;
  /// pandn fusion peephole.
  bool FuseAndn = true;
  /// 0 = use the registers/max-live heuristic.
  unsigned InterleaveFactorOverride = 0;

  // Mid-end toggles (the Usuba0 scalar optimizer, src/core/Optimizer.h;
  // usubac -O0 clears all four, -fno-<pass> clears one).
  bool CopyProp = true;     ///< collapse the inliner's Mov chains
  bool ConstantFold = true; ///< constant folding + algebraic identities
  bool Cse = true;          ///< hash-based local value numbering
  bool Dce = true;          ///< mark-and-sweep dead code elimination

  /// Resource guards: hostile or degenerate inputs produce a diagnostic
  /// (or a skipped optimization with a warning) instead of an OOM or a
  /// hang. 0 disables the corresponding guard.
  struct ResourceBudgets {
    /// Cap on `forall`-expanded equations per node (front-end unrolling).
    size_t MaxUnrolledEquations = size_t{1} << 20;
    /// Cap on BDD nodes built while synthesizing one lookup table.
    size_t MaxBddNodes = size_t{1} << 22;
    /// Cap on the projected instruction count of any function after a
    /// growth pass (inlining, interleaving). Exceeding it skips the pass.
    size_t MaxInstrs = size_t{1} << 22;
    /// Soft wall-clock deadline for the back-end optimization pipeline:
    /// once exceeded, remaining optional passes are skipped (with
    /// warnings). Correctness passes always run.
    unsigned MaxOptimizeMillis = 60000;
  };
  ResourceBudgets Budgets;

  /// Translation validation (core/Validator.h): after every checkpointed
  /// pass, prove (or differentially check) that the pass preserved the
  /// entry function's semantics by comparing pre- and post-pass BDD
  /// output cones. On a mismatch the compile is gracefully demoted to
  /// -O0: the mid-end's effects are undone, remaining optional passes are
  /// refused, and the incident is recorded as a structured remark, a
  /// telemetry counter ("usubac.validate.*") and SkippedPasses entries
  /// (including the "demote-to-O0" marker). Also enabled by the
  /// environment (USUBA_VALIDATE=1). Proof cost is bounded by
  /// Budgets.MaxBddNodes.
  bool ValidatePasses = false;

  /// Test-only hooks for the checkpoint machinery. When a back-end pass
  /// name matches DebugBreakPass, the pass's output IR is deliberately
  /// corrupted after it runs (the checkpoint must detect this and roll
  /// back). When it matches DebugIcePass, an ICE is raised right after
  /// the pass (the checkpoint must catch and roll back). Production
  /// callers leave both null.
  const char *DebugBreakPass = nullptr;
  const char *DebugIcePass = nullptr;
  /// Test-only fault injection for the *validator*: after the named pass
  /// runs, its output IR is given a semantics-changing but structurally
  /// well-formed corruption (an opcode flip), which the structural
  /// checkpoint cannot see — only translation validation (or a
  /// differential test) catches it. Production callers leave it null.
  const char *DebugMiscompilePass = nullptr;

  /// Observer invoked after every checkpointed back-end pass attempt,
  /// with the PassStat just recorded and the IR as the pass left it
  /// (post-rollback when the pass was refused or undone). Powers
  /// usubac's -dump-after per-pass IR snapshots. Null = no observation.
  std::function<void(const PassStat &, const U0Program &)> PassObserver;

  /// The effective atom size after optional flattening.
  unsigned effectiveWordBits() const { return Bitslice ? 1 : WordBits; }
};

/// Per-pass accounting recorded by the checkpointed back-end runner:
/// what ran, for how long, what it did to the code size, and how much of
/// the optimization time budget was left when it finished. The benches
/// and CipherStats surface these so ablation numbers are attributable
/// pass by pass.
struct PassStat {
  std::string Name;
  /// Wall time of the pass body (including its post-pass verification).
  double WallMillis = 0;
  /// Instruction-count change across all functions (negative = shrank).
  int64_t InstrDelta = 0;
  /// False when the pass was rolled back or refused (it then also
  /// appears in SkippedPasses).
  bool Kept = true;
  /// Milliseconds left of Budgets.MaxOptimizeMillis when the pass
  /// finished (0 when no budget is configured).
  double BudgetMillisRemaining = 0;
};

/// A compiled kernel: the optimized Usuba0 program plus the entry node's
/// interface types (needed by the transposition runtime) and a few
/// statistics the benches report.
struct CompiledKernel {
  U0Program Prog;
  /// Monomorphized (and possibly flattened) entry parameter types, in
  /// ABI order. Their flattened lengths sum to the entry's register input
  /// count divided by the interleave factor.
  std::vector<Type> ParamTypes;
  std::vector<Type> ReturnTypes;

  unsigned MaxLive = 0;        ///< before interleaving
  size_t InstrCount = 0;       ///< entry instruction count (code size proxy)
  /// Entry instruction count as the mid-end optimizer found it (after
  /// inlining, before copy-prop/constant-fold/cse/dce). InstrCount -
  /// InstrCountPreOpt is the optimizer's net effect; the optimizer never
  /// increases the count.
  size_t InstrCountPreOpt = 0;
  /// Logic-gate count of the final entry function: instructions that do
  /// real work at run time (everything except Mov/Const/Barrier). With
  /// KernelDepth below, the measurable product of circuit synthesis and
  /// scheduling — machine-independent, surfaced in CipherStats and the
  /// throughput bench rows.
  size_t KernelGates = 0;
  /// Critical-path length of the final entry function (longest chain of
  /// dependent non-Mov instructions) — the latency lower bound at
  /// infinite ILP. See criticalPathLength().
  size_t KernelDepth = 0;
  /// Back-end optimization passes dropped by a post-pass verification
  /// checkpoint (rolled back after producing ill-formed IR), by a
  /// resource budget, or by translation validation (rolled back after
  /// changing semantics — the marker entry "demote-to-O0" then records
  /// that the whole mid-end was undone). Empty in healthy compilations;
  /// each entry was also reported as a warning diagnostic.
  std::vector<std::string> SkippedPasses;
  /// One entry per checkpointed back-end pass that was attempted, in
  /// execution order (see PassStat).
  std::vector<PassStat> PassStats;
  /// Optimization remarks recorded while compiling this kernel. Empty
  /// unless remarks were enabled (USUBA_REMARKS=1 or
  /// RemarkEngine::setEnabled) — see support/Remarks.h.
  std::vector<Remark> Remarks;
  unsigned InterleaveFactor() const { return Prog.InterleaveFactor; }
};

/// Compiles Usuba source text. Returns std::nullopt and fills \p Diags on
/// any front-end error.
std::optional<CompiledKernel> compileUsuba(std::string_view Source,
                                           const CompileOptions &Options,
                                           DiagnosticEngine &Diags);

/// Same, starting from a parsed program (consumed).
std::optional<CompiledKernel> compileAst(ast::Program Prog,
                                         const CompileOptions &Options,
                                         DiagnosticEngine &Diags);

} // namespace usuba

#endif // USUBA_CORE_COMPILER_H
