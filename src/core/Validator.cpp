//===- Validator.cpp - Translation validation for Usuba0 passes -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Validator.h"

#include "circuits/Bdd.h"
#include "support/BitUtils.h"

#include <algorithm>
#include <functional>
#include <vector>

using namespace usuba;

namespace {

/// Raised when the program uses an op/direction combination the reduced
/// model cannot express; validation reports Skipped with this reason.
struct UnsupportedModel {
  std::string Why;
};

/// The symbolic walker, shared by the proof and random tiers through the
/// Domain parameter. A Domain provides a Bit value type plus the boolean
/// connectives; registers are vectors of M bits (M = MBits — one element
/// for vertical/bitsliced programs, one bit per position for horizontal
/// ones).
///
/// The proof domain instantiates Bit = BddManager::Ref (canonical — equal
/// refs iff equivalent). The random domain instantiates Bit = uint64_t,
/// where bit t of the word is independent random trial t: the bit-level
/// formulas below are plain AND/XOR/OR networks, so evaluating them on
/// 64-bit words runs 64 input vectors in one pass.
template <class Domain> class SymbolicEval {
public:
  using Bit = typename Domain::Bit;
  using RegValue = std::vector<Bit>;

  SymbolicEval(Domain &D, const U0Program &Prog)
      : D(D), Prog(Prog), M(Prog.MBits),
        Horizontal(Prog.Direction == Dir::Horiz && Prog.MBits > 1) {}

  /// Evaluates \p F on \p Inputs (one RegValue per input register) and
  /// returns the output RegValues in declaration order.
  std::vector<RegValue> evalFunction(const U0Function &F,
                                     const std::vector<RegValue> &Inputs,
                                     unsigned Depth = 0) {
    if (Depth > 64)
      throw UnsupportedModel{"call nesting deeper than 64 (cycle?)"};
    std::vector<RegValue> Regs(F.NumRegs, RegValue(M, D.constant(false)));
    for (unsigned I = 0; I < F.NumInputs && I < Inputs.size(); ++I)
      Regs[I] = Inputs[I];
    for (const U0Instr &I : F.Instrs)
      evalInstr(I, Regs, Depth);
    std::vector<RegValue> Outs;
    for (unsigned R : F.Outputs)
      Outs.push_back(Regs[R]);
    return Outs;
  }

private:
  void evalInstr(const U0Instr &I, std::vector<RegValue> &Regs,
                 unsigned Depth) {
    switch (I.Op) {
    case U0Op::Mov:
      Regs[I.Dests[0]] = Regs[I.Srcs[0]];
      return;
    case U0Op::Const: {
      RegValue &V = Regs[I.Dests[0]];
      for (unsigned B = 0; B < M; ++B) {
        // Horizontal: position j is all-ones iff atom bit (m-1-j) of the
        // immediate is set (simd::broadcastHorizontal); vertical and
        // bitsliced: element bit i is immediate bit i.
        unsigned ImmBit = Horizontal ? (M - 1 - B) : B;
        V[B] = D.constant((I.Imm >> ImmBit) & 1);
      }
      return;
    }
    case U0Op::Not: {
      const RegValue &A = Regs[I.Srcs[0]];
      RegValue V(M, D.constant(false));
      for (unsigned B = 0; B < M; ++B)
        V[B] = D.mkNot(A[B]);
      Regs[I.Dests[0]] = std::move(V);
      return;
    }
    case U0Op::And:
    case U0Op::Or:
    case U0Op::Xor:
    case U0Op::Andn: {
      const RegValue &A = Regs[I.Srcs[0]];
      const RegValue &C = Regs[I.Srcs[1]];
      RegValue V(M, D.constant(false));
      for (unsigned B = 0; B < M; ++B) {
        switch (I.Op) {
        case U0Op::And:
          V[B] = D.mkAnd(A[B], C[B]);
          break;
        case U0Op::Or:
          V[B] = D.mkOr(A[B], C[B]);
          break;
        case U0Op::Xor:
          V[B] = D.mkXor(A[B], C[B]);
          break;
        default:
          V[B] = D.mkAnd(D.mkNot(A[B]), C[B]); // Andn: ~a & b
          break;
        }
      }
      Regs[I.Dests[0]] = std::move(V);
      return;
    }
    case U0Op::Add:
    case U0Op::Sub:
      requireVertical(I.Op);
      Regs[I.Dests[0]] =
          addSub(Regs[I.Srcs[0]], Regs[I.Srcs[1]], I.Op == U0Op::Sub);
      return;
    case U0Op::Mul: {
      requireVertical(I.Op);
      // Shift-and-add: product = sum_k (a_k ? b << k : 0), mod 2^m.
      const RegValue A = Regs[I.Srcs[0]];
      const RegValue C = Regs[I.Srcs[1]];
      RegValue Acc(M, D.constant(false));
      for (unsigned K = 0; K < M; ++K) {
        RegValue Partial(M, D.constant(false));
        for (unsigned B = K; B < M; ++B)
          Partial[B] = D.mkAnd(A[K], C[B - K]);
        Acc = addSub(Acc, Partial, /*Subtract=*/false);
      }
      Regs[I.Dests[0]] = std::move(Acc);
      return;
    }
    case U0Op::Lshift:
    case U0Op::Rshift: {
      requireVertical(I.Op);
      const RegValue A = Regs[I.Srcs[0]];
      RegValue V(M, D.constant(false));
      if (I.Amount < M) { // amounts >= m shift everything out (simd::shl/shr)
        for (unsigned B = 0; B < M; ++B) {
          if (I.Op == U0Op::Lshift && B >= I.Amount)
            V[B] = A[B - I.Amount];
          if (I.Op == U0Op::Rshift && B + I.Amount < M)
            V[B] = A[B + I.Amount];
        }
      }
      Regs[I.Dests[0]] = std::move(V);
      return;
    }
    case U0Op::Lrotate:
    case U0Op::Rrotate: {
      requireVertical(I.Op);
      const RegValue A = Regs[I.Srcs[0]];
      unsigned R = I.Amount % M;
      if (I.Op == U0Op::Rrotate)
        R = R == 0 ? 0 : M - R;
      RegValue V(M, D.constant(false));
      for (unsigned B = 0; B < M; ++B)
        V[B] = A[(B + M - R) % M]; // dest bit b takes src bit b - r mod m
      Regs[I.Dests[0]] = std::move(V);
      return;
    }
    case U0Op::Shuffle: {
      if (!Horizontal)
        throw UnsupportedModel{
            "shuffle outside horizontal slicing is not in the per-atom "
            "model (it would move data across slices)"};
      const RegValue A = Regs[I.Srcs[0]];
      RegValue V(M, D.constant(false));
      for (unsigned J = 0; J < M && J < I.Pattern.size(); ++J)
        if (I.Pattern[J] != 0xFF && I.Pattern[J] < M)
          V[J] = A[I.Pattern[J]];
      Regs[I.Dests[0]] = std::move(V);
      return;
    }
    case U0Op::Call: {
      const U0Function &Callee = Prog.Funcs[I.Callee];
      std::vector<RegValue> Args;
      for (unsigned A = 0; A < Callee.NumInputs; ++A)
        Args.push_back(Regs[I.Srcs[A]]);
      std::vector<RegValue> Rets = evalFunction(Callee, Args, Depth + 1);
      for (size_t R = 0; R < I.Dests.size() && R < Rets.size(); ++R)
        Regs[I.Dests[R]] = std::move(Rets[R]);
      return;
    }
    case U0Op::Barrier:
      return;
    }
  }

  /// Ripple-carry add/sub mod 2^m, mirroring simd::addElems/subElems:
  /// a - b = a + ~b + 1.
  RegValue addSub(const RegValue &A, const RegValue &B, bool Subtract) {
    RegValue V(M, D.constant(false));
    Bit Carry = D.constant(Subtract);
    for (unsigned I = 0; I < M; ++I) {
      Bit Y = Subtract ? D.mkNot(B[I]) : B[I];
      Bit AxY = D.mkXor(A[I], Y);
      V[I] = D.mkXor(AxY, Carry);
      // maj(a, y, c) = (a & y) | (c & (a ^ y))
      Carry = D.mkOr(D.mkAnd(A[I], Y), D.mkAnd(Carry, AxY));
    }
    return V;
  }

  void requireVertical(U0Op Op) const {
    if (Horizontal)
      throw UnsupportedModel{std::string(u0OpName(Op)) +
                             " in a horizontal program is outside the "
                             "per-position model"};
  }

  Domain &D;
  const U0Program &Prog;
  const unsigned M;
  const bool Horizontal;
};

/// Proof tier: bits are canonical BDD references.
struct BddDomain {
  using Bit = BddManager::Ref;
  BddManager &B;
  Bit constant(bool V) { return V ? BddManager::True : BddManager::False; }
  Bit mkNot(Bit F) { return B.mkNot(F); }
  Bit mkAnd(Bit F, Bit G) { return B.mkAnd(F, G); }
  Bit mkOr(Bit F, Bit G) { return B.mkOr(F, G); }
  Bit mkXor(Bit F, Bit G) { return B.mkXor(F, G); }
};

/// Random tier: bit t of the word is independent trial t (64 vectors per
/// evaluation).
struct ConcreteDomain {
  using Bit = uint64_t;
  Bit constant(bool V) { return V ? ~uint64_t{0} : 0; }
  Bit mkNot(Bit F) { return ~F; }
  Bit mkAnd(Bit F, Bit G) { return F & G; }
  Bit mkOr(Bit F, Bit G) { return F | G; }
  Bit mkXor(Bit F, Bit G) { return F ^ G; }
};

uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

std::string outputName(size_t Out, unsigned Bit) {
  return "output " + std::to_string(Out) + " bit " + std::to_string(Bit);
}

/// The proof tier. Returns Proven/Mismatch, or a skip reason in
/// \p FallbackWhy when the budget tripped.
ValidationOutcome proveBdd(const U0Program &Before, const U0Program &After,
                           size_t MaxBddNodes, std::string &FallbackWhy) {
  BddManager B(MaxBddNodes);
  BddDomain D{B};
  const unsigned M = Before.MBits;
  const U0Function &Entry = Before.entry();

  std::vector<std::vector<BddManager::Ref>> Inputs(
      Entry.NumInputs, std::vector<BddManager::Ref>(M));
  try {
    // Interleaved variable order: bit b of every register sits next to
    // bit b of every other register. For carry-propagating arithmetic
    // (a ripple carry consumes bit b of both operands before touching
    // bit b+1) this keeps the BDD linear in M, where the input-major
    // order (all of register A's bits before register B's) is the
    // textbook exponential one.
    for (unsigned I = 0; I < Entry.NumInputs; ++I)
      for (unsigned Bit = 0; Bit < M; ++Bit)
        Inputs[I][Bit] = B.var(Bit * Entry.NumInputs + I);

    SymbolicEval<BddDomain> EvalBefore(D, Before);
    SymbolicEval<BddDomain> EvalAfter(D, After);
    auto OutsBefore = EvalBefore.evalFunction(Entry, Inputs);
    auto OutsAfter = EvalAfter.evalFunction(After.entry(), Inputs);

    ValidationOutcome R;
    R.BddNodes = B.numNodes();
    for (size_t O = 0; O < OutsBefore.size(); ++O)
      for (unsigned Bit = 0; Bit < M; ++Bit)
        if (OutsBefore[O][Bit] != OutsAfter[O][Bit]) {
          R.K = ValidationOutcome::Kind::Mismatch;
          R.Detail = outputName(O, Bit) +
                     " differs between the pre- and post-pass programs";
          return R;
        }
    R.K = ValidationOutcome::Kind::Proven;
    return R;
  } catch (const BddBudgetExceeded &) {
    FallbackWhy = "BDD node budget exceeded at " +
                  std::to_string(B.numNodes()) + " nodes (oversized cone)";
    ValidationOutcome R;
    R.K = ValidationOutcome::Kind::Skipped;
    R.BddNodes = B.numNodes();
    return R;
  }
}

/// The random differential tier over the same reduced model.
/// Deterministic (fixed seed): a failure reproduces.
ValidationOutcome checkRandom(const U0Program &Before,
                              const U0Program &After, size_t ProofNodes,
                              const std::string &Why) {
  constexpr unsigned Rounds = 4; // x64 trials per round = 256 vectors
  ConcreteDomain D;
  const unsigned M = Before.MBits;
  const U0Function &Entry = Before.entry();
  uint64_t Rng = 0x5EEDBDD5EEDBDDull ^ (uint64_t{Entry.NumInputs} << 32) ^
                 Entry.Instrs.size();

  ValidationOutcome R;
  R.BddNodes = ProofNodes;
  for (unsigned Round = 0; Round < Rounds; ++Round) {
    std::vector<std::vector<uint64_t>> Inputs(Entry.NumInputs,
                                              std::vector<uint64_t>(M));
    for (auto &Reg : Inputs)
      for (uint64_t &Bit : Reg)
        Bit = splitmix64(Rng);

    SymbolicEval<ConcreteDomain> EvalBefore(D, Before);
    SymbolicEval<ConcreteDomain> EvalAfter(D, After);
    auto OutsBefore = EvalBefore.evalFunction(Entry, Inputs);
    auto OutsAfter = EvalAfter.evalFunction(After.entry(), Inputs);
    R.RandomVectors += 64;
    for (size_t O = 0; O < OutsBefore.size(); ++O)
      for (unsigned Bit = 0; Bit < M; ++Bit)
        if (OutsBefore[O][Bit] != OutsAfter[O][Bit]) {
          R.K = ValidationOutcome::Kind::Mismatch;
          R.Detail = outputName(O, Bit) +
                     " differs on a random input (differential tier; "
                     "proof tier unavailable: " +
                     Why + ")";
          return R;
        }
  }
  R.K = ValidationOutcome::Kind::CheckedRandom;
  R.Detail = Why;
  return R;
}

/// Whether any function multiplies. Under the interleaved variable order
/// Add/Sub ripple carries build linear-size BDDs, so they use the
/// general cap; multiplication's middle output bits are exponential
/// under EVERY variable order (Bryant 1986), so Mul cones keep a far
/// tighter proof-tier input cap — building millions of nodes just to
/// trip the budget costs real compile time.
bool containsMul(const U0Program &Prog) {
  for (const U0Function &F : Prog.Funcs)
    for (const U0Instr &I : F.Instrs)
      if (I.Op == U0Op::Mul)
        return true;
  return false;
}

} // namespace

const char *usuba::validationKindName(ValidationOutcome::Kind K) {
  switch (K) {
  case ValidationOutcome::Kind::Proven:
    return "proven";
  case ValidationOutcome::Kind::CheckedRandom:
    return "checked-random";
  case ValidationOutcome::Kind::Mismatch:
    return "mismatch";
  case ValidationOutcome::Kind::Skipped:
    return "skipped";
  }
  return "unknown";
}

ValidationOutcome usuba::validateTransformation(const U0Program &Before,
                                                const U0Program &After,
                                                size_t MaxBddNodes) {
  ValidationOutcome R;

  // Shape guards: a pass that changes the entry interface (interleaving)
  // is outside what output-cone comparison can say anything about.
  if (Before.MBits != After.MBits ||
      Before.Direction != After.Direction) {
    R.Detail = "program slicing changed across the pass";
    return R;
  }
  if (Before.entry().NumInputs != After.entry().NumInputs ||
      Before.entry().Outputs.size() != After.entry().Outputs.size()) {
    R.Detail = "entry interface changed across the pass";
    return R;
  }

  try {
    const unsigned InputBits = Before.entry().NumInputs * Before.MBits;
    const bool Mul = containsMul(Before) || containsMul(After);
    const unsigned Cap =
        Mul ? ValidatorMaxMulInputBits : ValidatorMaxInputBits;
    std::string FallbackWhy;
    if (InputBits <= Cap) {
      ValidationOutcome Proof =
          proveBdd(Before, After, MaxBddNodes, FallbackWhy);
      if (Proof.K != ValidationOutcome::Kind::Skipped)
        return Proof;
      return checkRandom(Before, After, Proof.BddNodes, FallbackWhy);
    }
    FallbackWhy = std::to_string(InputBits) +
                  " input bits exceed the proof tier's cap of " +
                  std::to_string(Cap) +
                  (Mul ? " for multiplication cones" : "");
    return checkRandom(Before, After, 0, FallbackWhy);
  } catch (const UnsupportedModel &U) {
    R.K = ValidationOutcome::Kind::Skipped;
    R.Detail = U.Why;
    return R;
  }
}
