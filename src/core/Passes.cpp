//===- Passes.cpp - Usuba0 back-end passes --------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Passes.h"

#include "support/Diagnostics.h"

#include <algorithm>
#include <map>
#include <set>
#include <tuple>

using namespace usuba;

//===----------------------------------------------------------------------===//
// Copy propagation / DCE / compaction
//===----------------------------------------------------------------------===//

void usuba::copyPropagate(U0Function &F) {
  // Single assignment makes this a one-pass rewrite: when we meet
  // `mov d, s`, s is already fully resolved, so Root chains stay flat.
  std::vector<unsigned> Root(F.NumRegs);
  for (unsigned R = 0; R < F.NumRegs; ++R)
    Root[R] = R;

  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  for (U0Instr &I : F.Instrs) {
    for (unsigned &S : I.Srcs)
      S = Root[S];
    if (I.Op == U0Op::Mov) {
      Root[I.Dests[0]] = I.Srcs[0];
      continue;
    }
    Kept.push_back(std::move(I));
  }
  F.Instrs = std::move(Kept);
  for (unsigned &R : F.Outputs)
    R = Root[R];
}

void usuba::eliminateDeadCode(U0Function &F) {
  std::vector<bool> Live(F.NumRegs, false);
  for (unsigned R : F.Outputs)
    Live[R] = true;

  std::vector<bool> Keep(F.Instrs.size(), false);
  for (size_t I = F.Instrs.size(); I-- > 0;) {
    const U0Instr &Instr = F.Instrs[I];
    if (Instr.Op == U0Op::Barrier) {
      Keep[I] = true;
      continue;
    }
    bool AnyLive = false;
    for (unsigned D : Instr.Dests)
      AnyLive |= Live[D];
    if (!AnyLive)
      continue;
    Keep[I] = true;
    for (unsigned S : Instr.Srcs)
      Live[S] = true;
  }

  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  for (size_t I = 0; I < F.Instrs.size(); ++I)
    if (Keep[I])
      Kept.push_back(std::move(F.Instrs[I]));
  F.Instrs = std::move(Kept);
}

void usuba::compactRegisters(U0Function &F) {
  constexpr unsigned Unmapped = ~0u;
  std::vector<unsigned> Map(F.NumRegs, Unmapped);
  unsigned Next = 0;
  for (unsigned R = 0; R < F.NumInputs; ++R)
    Map[R] = Next++;
  for (const U0Instr &I : F.Instrs)
    for (unsigned D : I.Dests) {
      USUBA_ICE_CHECK(Map[D] == Unmapped, "register defined twice");
      Map[D] = Next++;
    }
  for (U0Instr &I : F.Instrs) {
    for (unsigned &S : I.Srcs) {
      USUBA_ICE_CHECK(Map[S] != Unmapped, "use of unmapped register");
      S = Map[S];
    }
    for (unsigned &D : I.Dests)
      D = Map[D];
  }
  for (unsigned &R : F.Outputs) {
    USUBA_ICE_CHECK(Map[R] != Unmapped, "unmapped output register");
    R = Map[R];
  }
  F.NumRegs = Next;
}

void usuba::cleanupProgram(U0Program &Prog) {
  for (U0Function &F : Prog.Funcs) {
    copyPropagate(F);
    eliminateDeadCode(F);
    compactRegisters(F);
  }
}

//===----------------------------------------------------------------------===//
// Inlining
//===----------------------------------------------------------------------===//

static void inlineCallsIn(U0Program &Prog, U0Function &F) {
  bool HasCall = false;
  for (const U0Instr &I : F.Instrs)
    HasCall |= I.Op == U0Op::Call;
  if (!HasCall)
    return;

  std::vector<U0Instr> Out;
  Out.reserve(F.Instrs.size() * 4);
  for (U0Instr &I : F.Instrs) {
    if (I.Op != U0Op::Call) {
      Out.push_back(std::move(I));
      continue;
    }
    // Callees precede callers and are processed first, so the body we
    // splice is itself call-free.
    const U0Function &Callee = Prog.Funcs[I.Callee];
    std::vector<unsigned> Map(Callee.NumRegs);
    for (unsigned R = 0; R < Callee.NumRegs; ++R)
      Map[R] = R < Callee.NumInputs ? I.Srcs[R] : F.addReg();
    for (const U0Instr &CI : Callee.Instrs) {
      U0Instr Copy = CI;
      for (unsigned &S : Copy.Srcs)
        S = Map[S];
      for (unsigned &D : Copy.Dests)
        D = Map[D];
      Out.push_back(std::move(Copy));
    }
    for (size_t J = 0; J < I.Dests.size(); ++J) {
      U0Instr Mv =
          U0Instr::unary(U0Op::Mov, I.Dests[J], Map[Callee.Outputs[J]]);
      Mv.Loc = I.Loc; // result wiring descends from the call site
      Out.push_back(std::move(Mv));
    }
  }
  F.Instrs = std::move(Out);
}

bool usuba::inlineAllCalls(U0Program &Prog, size_t MaxInstrs) {
  if (MaxInstrs) {
    // Project the fully inlined instruction count before rewriting
    // anything (callees precede callers, so sizes resolve in one sweep).
    std::vector<size_t> Size(Prog.Funcs.size(), 0);
    for (size_t F = 0; F < Prog.Funcs.size(); ++F) {
      size_t Total = 0;
      for (const U0Instr &I : Prog.Funcs[F].Instrs) {
        if (I.Op == U0Op::Call)
          Total += Size[I.Callee] + I.Dests.size(); // body + result Movs
        else
          ++Total;
        if (Total > MaxInstrs)
          return false;
      }
      Size[F] = Total;
    }
  }
  for (U0Function &F : Prog.Funcs)
    inlineCallsIn(Prog, F);
  return true;
}

//===----------------------------------------------------------------------===//
// Common-subexpression elimination
//===----------------------------------------------------------------------===//

unsigned usuba::eliminateCommonSubexpressions(U0Function &F) {
  // Key: opcode + (canonically ordered) sources + scalar payloads. The
  // single-assignment discipline means a matching earlier instruction's
  // destination already holds the value everywhere later.
  std::map<std::tuple<int, std::vector<unsigned>, unsigned, uint64_t,
                      std::vector<uint8_t>>,
           unsigned>
      Seen;
  std::vector<unsigned> Replace(F.NumRegs);
  for (unsigned R = 0; R < F.NumRegs; ++R)
    Replace[R] = R;

  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  unsigned Removed = 0;
  for (U0Instr &I : F.Instrs) {
    for (unsigned &S : I.Srcs)
      S = Replace[S];
    // Calls and barriers are not folded (calls are pure, but folding
    // multi-result calls complicates little for no gain here).
    if (I.Op == U0Op::Call || I.Op == U0Op::Barrier) {
      Kept.push_back(std::move(I));
      continue;
    }
    std::vector<unsigned> Ops = I.Srcs;
    bool Commutative = I.Op == U0Op::And || I.Op == U0Op::Or ||
                       I.Op == U0Op::Xor || I.Op == U0Op::Add ||
                       I.Op == U0Op::Mul;
    if (Commutative && Ops.size() == 2 && Ops[1] < Ops[0])
      std::swap(Ops[0], Ops[1]);
    auto Key = std::make_tuple(static_cast<int>(I.Op), std::move(Ops),
                               I.Amount, I.Imm, I.Pattern);
    auto [It, Inserted] = Seen.emplace(std::move(Key), I.Dests[0]);
    if (Inserted) {
      Kept.push_back(std::move(I));
      continue;
    }
    Replace[I.Dests[0]] = It->second;
    ++Removed;
  }
  F.Instrs = std::move(Kept);
  for (unsigned &R : F.Outputs)
    R = Replace[R];
  return Removed;
}

//===----------------------------------------------------------------------===//
// Peephole: and-not fusion
//===----------------------------------------------------------------------===//

unsigned usuba::fuseAndNot(U0Function &F) {
  // Count uses of every register and remember the defining Not.
  std::vector<unsigned> UseCount(F.NumRegs, 0);
  std::vector<int> NotDef(F.NumRegs, -1);
  for (size_t I = 0; I < F.Instrs.size(); ++I) {
    for (unsigned S : F.Instrs[I].Srcs)
      ++UseCount[S];
    if (F.Instrs[I].Op == U0Op::Not)
      NotDef[F.Instrs[I].Dests[0]] = static_cast<int>(I);
  }
  for (unsigned R : F.Outputs)
    ++UseCount[R];

  std::vector<bool> Dead(F.Instrs.size(), false);
  unsigned Fused = 0;
  for (U0Instr &I : F.Instrs) {
    if (I.Op != U0Op::And)
      continue;
    // Prefer fusing the first operand; fall back to the second (And is
    // commutative).
    for (unsigned Side = 0; Side < 2; ++Side) {
      unsigned Src = I.Srcs[Side];
      int Def = NotDef[Src];
      if (Def < 0 || UseCount[Src] != 1)
        continue;
      unsigned Other = I.Srcs[1 - Side];
      I.Op = U0Op::Andn;
      I.Srcs = {F.Instrs[Def].Srcs[0], Other}; // dest = ~a & b
      Dead[Def] = true;
      ++Fused;
      break;
    }
  }
  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  for (size_t I = 0; I < F.Instrs.size(); ++I)
    if (!Dead[I])
      Kept.push_back(std::move(F.Instrs[I]));
  F.Instrs = std::move(Kept);
  return Fused;
}

//===----------------------------------------------------------------------===//
// Liveness and interleaving
//===----------------------------------------------------------------------===//

unsigned usuba::maxLiveRegisters(const U0Function &F, bool CountInputs) {
  constexpr size_t Never = ~size_t{0};
  std::vector<size_t> LastUse(F.NumRegs, Never);
  for (size_t I = 0; I < F.Instrs.size(); ++I)
    for (unsigned S : F.Instrs[I].Srcs)
      LastUse[S] = I;
  // Outputs stay live to the end.
  for (unsigned R : F.Outputs)
    LastUse[R] = F.Instrs.size();

  if (!CountInputs)
    for (unsigned R = 0; R < F.NumInputs; ++R)
      LastUse[R] = Never;

  unsigned Live = 0, MaxLive = 0;
  // Inputs are live from the start (if ever used).
  for (unsigned R = 0; R < F.NumInputs; ++R)
    if (LastUse[R] != Never)
      ++Live;
  MaxLive = Live;
  for (size_t I = 0; I < F.Instrs.size(); ++I) {
    for (unsigned D : F.Instrs[I].Dests)
      if (D >= F.NumInputs && LastUse[D] != Never)
        ++Live;
    MaxLive = std::max(MaxLive, Live);
    for (unsigned S : F.Instrs[I].Srcs)
      if (LastUse[S] == I && (CountInputs || S >= F.NumInputs))
        --Live;
    // A register both defined and last used here dies immediately; the
    // loop above already handled sources, and an unused destination was
    // never counted.
  }
  return MaxLive;
}

unsigned usuba::interleaveFactorFor(unsigned MaxLive, const Arch &Target) {
  if (MaxLive == 0)
    return 1;
  unsigned Factor = Target.NumRegisters / MaxLive;
  return std::clamp(Factor, 1u, 4u);
}

void usuba::interleaveEntry(U0Program &Prog, unsigned Factor,
                            unsigned BlockSize) {
  USUBA_ICE_CHECK(Factor >= 1 && BlockSize >= 1,
                  "bad interleave parameters");
  if (Factor == 1)
    return;
  U0Function &F = Prog.entry();
  U0Function Out;
  Out.Name = F.Name;
  Out.NumInputs = F.NumInputs * Factor;
  Out.NumRegs = Out.NumInputs;
  unsigned Locals = F.NumRegs - F.NumInputs;

  // Instance t: input r -> t*NumInputs + r; local r -> base + t*Locals +
  // (r - NumInputs).
  auto MapReg = [&](unsigned T, unsigned R) {
    if (R < F.NumInputs)
      return T * F.NumInputs + R;
    return Out.NumInputs + T * Locals + (R - F.NumInputs);
  };
  Out.NumRegs = Out.NumInputs + Locals * Factor;

  std::vector<size_t> Cursor(Factor, 0);
  bool Remaining = true;
  while (Remaining) {
    Remaining = false;
    for (unsigned T = 0; T < Factor; ++T) {
      size_t End = std::min(Cursor[T] + BlockSize, F.Instrs.size());
      for (size_t I = Cursor[T]; I < End; ++I) {
        U0Instr Copy = F.Instrs[I];
        for (unsigned &S : Copy.Srcs)
          S = MapReg(T, S);
        for (unsigned &D : Copy.Dests)
          D = MapReg(T, D);
        Out.Instrs.push_back(std::move(Copy));
      }
      Cursor[T] = End;
      Remaining |= End < F.Instrs.size();
    }
  }
  for (unsigned T = 0; T < Factor; ++T)
    for (unsigned R : F.Outputs)
      Out.Outputs.push_back(MapReg(T, R));
  F = std::move(Out);
  Prog.InterleaveFactor *= Factor;
}

//===----------------------------------------------------------------------===//
// Scheduling
//===----------------------------------------------------------------------===//

namespace {

/// Splits the instruction list into Barrier-delimited segments, applies
/// \p ScheduleSegment to each, and reassembles (with the barriers).
template <typename Fn> void forEachSegment(U0Function &F, Fn ScheduleSegment) {
  std::vector<U0Instr> Out;
  Out.reserve(F.Instrs.size());
  std::vector<U0Instr> Segment;
  auto Flush = [&] {
    ScheduleSegment(Segment);
    for (U0Instr &I : Segment)
      Out.push_back(std::move(I));
    Segment.clear();
  };
  for (U0Instr &I : F.Instrs) {
    if (I.Op == U0Op::Barrier) {
      Flush();
      Out.push_back(std::move(I));
      continue;
    }
    Segment.push_back(std::move(I));
  }
  Flush();
  F.Instrs = std::move(Out);
}

/// Instruction index defining each register within a segment (-1 when the
/// register is defined outside — an input or an earlier segment).
std::vector<int> definersOf(const std::vector<U0Instr> &Segment,
                            unsigned NumRegs) {
  std::vector<int> Def(NumRegs, -1);
  for (size_t I = 0; I < Segment.size(); ++I)
    for (unsigned D : Segment[I].Dests)
      Def[D] = static_cast<int>(I);
  return Def;
}

/// Execution-unit classes for the m-slice scheduler's port model: on
/// Skylake, shuffles contend for a single port while logic/arith/shift
/// spread over several (Section 3.2 and 4.3).
enum class Unit : uint8_t { Logic, Arith, Shift, Shuffle, Other };

Unit unitOf(const U0Instr &I) {
  if (isShuffleLike(I.Op))
    return Unit::Shuffle;
  if (isArithOp(I.Op))
    return Unit::Arith;
  if (I.Op == U0Op::Lshift || I.Op == U0Op::Rshift ||
      I.Op == U0Op::Lrotate || I.Op == U0Op::Rrotate)
    return Unit::Shift;
  if (isLogicOp(I.Op))
    return Unit::Logic;
  return Unit::Other;
}

/// Latency weight of an instruction on a dependence chain: Mov and
/// Barrier are free wiring (register renaming / pass bookkeeping), Const
/// starts a chain at level 0, everything else costs one level.
unsigned chainCost(const U0Instr &I) {
  return I.Op == U0Op::Mov || I.Op == U0Op::Barrier || I.Op == U0Op::Const
             ? 0
             : 1;
}

/// Remaining critical-path height of every instruction in a segment:
/// Height[I] = chainCost(I) + max over Height of I's users (0 at sinks).
/// Users edges always point forward (single assignment), so one backward
/// sweep suffices.
std::vector<unsigned>
remainingHeights(const std::vector<U0Instr> &Segment,
                 const std::vector<std::vector<unsigned>> &Users) {
  std::vector<unsigned> Height(Segment.size(), 0);
  for (size_t I = Segment.size(); I-- > 0;) {
    unsigned Best = 0;
    for (unsigned User : Users[I])
      Best = std::max(Best, Height[User]);
    Height[I] = chainCost(Segment[I]) + Best;
  }
  return Height;
}

void scheduleBitsliceSegment(std::vector<U0Instr> &Segment, unsigned NumRegs,
                             BitsliceScheduleStats *Stats,
                             ScheduleObjective Objective) {
  std::vector<int> Def = definersOf(Segment, NumRegs);
  std::vector<std::vector<unsigned>> Users(Segment.size());
  for (size_t I = 0; I < Segment.size(); ++I)
    for (unsigned S : Segment[I].Srcs) {
      int D = Def[S];
      if (D >= 0 && static_cast<size_t>(D) != I)
        Users[D].push_back(static_cast<unsigned>(I));
    }

  std::vector<unsigned> Height = remainingHeights(Segment, Users);
  if (Stats)
    for (unsigned H : Height)
      Stats->CriticalPathLen = std::max(Stats->CriticalPathLen, H);

  std::vector<bool> Scheduled(Segment.size(), false);
  std::vector<unsigned> Order;
  Order.reserve(Segment.size());

  // Iterative depth-first "schedule this instruction and its unscheduled
  // dependencies first" (Algorithm 1 lines 3-6).
  auto ScheduleWithDeps = [&](unsigned Root) {
    if (Scheduled[Root])
      return;
    std::vector<std::pair<unsigned, size_t>> Stack; // (instr, next src)
    Stack.push_back({Root, 0});
    while (!Stack.empty()) {
      auto &[I, NextSrc] = Stack.back();
      if (Scheduled[I]) {
        Stack.pop_back();
        continue;
      }
      const U0Instr &Instr = Segment[I];
      bool Descended = false;
      while (NextSrc < Instr.Srcs.size()) {
        int D = Def[Instr.Srcs[NextSrc]];
        ++NextSrc;
        if (D >= 0 && !Scheduled[D]) {
          Stack.push_back({static_cast<unsigned>(D), 0});
          Descended = true;
          break;
        }
      }
      if (Descended)
        continue;
      if (NextSrc >= Instr.Srcs.size()) {
        Scheduled[I] = true;
        Order.push_back(I);
        Stack.pop_back();
      }
    }
  };

  auto IsReady = [&](unsigned I) {
    if (Scheduled[I])
      return false;
    for (unsigned S : Segment[I].Srcs) {
      int D = Def[S];
      if (D >= 0 && !Scheduled[D])
        return false;
    }
    return true;
  };

  for (size_t I = 0; I < Segment.size(); ++I) {
    if (Segment[I].Op != U0Op::Call)
      continue;
    if (Stats)
      ++Stats->Calls;
    // Lines 2-6: pull the arguments' definitions next to the call.
    ScheduleWithDeps(static_cast<unsigned>(I));
    // Lines 7-10: schedule the consumers of the results while they are
    // hot. Under the depth objective, deeper consumers (those heading
    // the longest remaining dependence chains) are tried first so their
    // own consumers become ready as early as possible; under the window
    // objective the original program order is kept.
    std::vector<unsigned> HoistOrder(Users[I].begin(), Users[I].end());
    if (Objective == ScheduleObjective::Depth) {
      std::stable_sort(HoistOrder.begin(), HoistOrder.end(),
                       [&](unsigned A, unsigned B) {
                         return Height[A] > Height[B];
                       });
      if (Stats)
        for (size_t K = 0; K < HoistOrder.size(); ++K)
          if (HoistOrder[K] != Users[I][K])
            ++Stats->DepthHoists;
    }
    for (unsigned User : HoistOrder)
      if (IsReady(User)) {
        Scheduled[User] = true;
        Order.push_back(User);
        if (Stats)
          ++Stats->ConsumersHoisted;
      }
  }
  for (size_t I = 0; I < Segment.size(); ++I)
    ScheduleWithDeps(static_cast<unsigned>(I));

  if (Stats) {
    ++Stats->Segments;
    for (size_t I = 0; I < Order.size(); ++I)
      if (Order[I] != I)
        ++Stats->Moved;
  }
  std::vector<U0Instr> Sorted;
  Sorted.reserve(Segment.size());
  for (unsigned I : Order)
    Sorted.push_back(std::move(Segment[I]));
  Segment = std::move(Sorted);
}

void scheduleMSliceSegment(std::vector<U0Instr> &Segment, unsigned NumRegs,
                           unsigned WindowLimit, MSliceScheduleStats *Stats,
                           ScheduleObjective Objective) {
  if (Stats)
    ++Stats->Segments;
  std::vector<int> Def = definersOf(Segment, NumRegs);
  std::vector<std::vector<unsigned>> Users(Segment.size());
  std::vector<unsigned> InDegree(Segment.size(), 0);
  for (size_t I = 0; I < Segment.size(); ++I) {
    std::set<int> Deps;
    for (unsigned S : Segment[I].Srcs) {
      int D = Def[S];
      if (D >= 0 && static_cast<size_t>(D) != I)
        Deps.insert(D);
    }
    for (int D : Deps) {
      Users[D].push_back(static_cast<unsigned>(I));
      ++InDegree[I];
    }
  }

  std::vector<unsigned> Height = remainingHeights(Segment, Users);
  if (Stats)
    for (unsigned H : Height)
      Stats->CriticalPathLen = std::max(Stats->CriticalPathLen, H);

  std::set<unsigned> Ready;
  for (size_t I = 0; I < Segment.size(); ++I)
    if (InDegree[I] == 0)
      Ready.insert(static_cast<unsigned>(I));

  // Look-behind window of recently scheduled instructions. Two concerns,
  // mirroring Section 3.2: (1) data hazards — an instruction whose source
  // was produced within the last few cycles stalls; (2) the shuffle unit
  // — Skylake executes shuffles on a single port, so back-to-back
  // shuffles serialize. Candidates are scanned in original program order
  // and the first acceptable one is taken, so the schedule deviates from
  // the source only where a stall or port conflict forces it (large
  // deviations inflate live ranges and cause spills — the cure must not
  // be worse than the disease).
  const unsigned HazardWindow = std::min(4u, WindowLimit);
  constexpr unsigned MaxCandidates = 32;
  std::vector<unsigned> Window;
  Unit PrevUnit = Unit::Other;
  std::vector<unsigned> Order;
  Order.reserve(Segment.size());

  auto HazardWith = [&](unsigned Cand) {
    size_t Begin =
        Window.size() > HazardWindow ? Window.size() - HazardWindow : 0;
    for (unsigned S : Segment[Cand].Srcs) {
      int D = Def[S];
      if (D < 0)
        continue;
      for (size_t W = Begin; W < Window.size(); ++W)
        if (Window[W] == static_cast<unsigned>(D))
          return true;
    }
    return false;
  };

  while (!Ready.empty()) {
    int Picked = -1;
    int PickedPass = -1;
    // Pass 0: no hazard, no shuffle-after-shuffle. Pass 1: no hazard.
    // Pass 2: first ready (original order). Under the window objective
    // the first acceptable candidate wins (stay close to program
    // order); under the depth objective the acceptable candidate with
    // the greatest remaining critical-path height wins.
    for (int Pass = 0; Pass < 2 && Picked < 0; ++Pass) {
      unsigned Seen = 0;
      int First = -1;
      for (unsigned Cand : Ready) {
        if (++Seen > MaxCandidates)
          break;
        if (HazardWith(Cand))
          continue;
        if (Pass == 0 && PrevUnit == Unit::Shuffle &&
            unitOf(Segment[Cand]) == Unit::Shuffle)
          continue;
        if (First < 0)
          First = static_cast<int>(Cand);
        if (Picked < 0 || (Objective == ScheduleObjective::Depth &&
                           Height[Cand] > Height[Picked])) {
          Picked = static_cast<int>(Cand);
          PickedPass = Pass;
          if (Stats)
            Stats->MaxLookahead = std::max(Stats->MaxLookahead, Seen);
        }
        if (Objective == ScheduleObjective::Window)
          break;
      }
      if (Stats && Picked >= 0 && Picked != First)
        ++Stats->DepthHoists;
    }
    if (Picked < 0)
      Picked = static_cast<int>(*Ready.begin());
    if (Stats) {
      if (PickedPass == 0)
        ++Stats->WindowHits;
      else if (PickedPass == 1)
        ++Stats->WindowMisses;
      else
        ++Stats->ForcedPicks;
    }

    Ready.erase(static_cast<unsigned>(Picked));
    Order.push_back(static_cast<unsigned>(Picked));
    Window.push_back(static_cast<unsigned>(Picked));
    if (Window.size() > WindowLimit)
      Window.erase(Window.begin());
    PrevUnit = unitOf(Segment[Picked]);
    for (unsigned User : Users[Picked])
      if (--InDegree[User] == 0)
        Ready.insert(User);
  }
  USUBA_ICE_CHECK(Order.size() == Segment.size(),
                  "scheduler dropped instructions");

  std::vector<U0Instr> Sorted;
  Sorted.reserve(Segment.size());
  for (unsigned I : Order)
    Sorted.push_back(std::move(Segment[I]));
  Segment = std::move(Sorted);
}

} // namespace

size_t usuba::countKernelGates(const U0Function &F) {
  size_t Gates = 0;
  for (const U0Instr &I : F.Instrs)
    Gates += chainCost(I);
  return Gates;
}

unsigned usuba::criticalPathLength(const U0Function &F) {
  std::vector<unsigned> RegDepth(F.NumRegs, 0);
  unsigned Max = 0;
  for (const U0Instr &I : F.Instrs) {
    unsigned SrcMax = 0;
    for (unsigned S : I.Srcs)
      SrcMax = std::max(SrcMax, RegDepth[S]);
    unsigned D = SrcMax + chainCost(I);
    for (unsigned Dest : I.Dests)
      RegDepth[Dest] = D;
    Max = std::max(Max, D);
  }
  return Max;
}

void usuba::scheduleBitslice(U0Function &F, BitsliceScheduleStats *Stats,
                             ScheduleObjective Objective) {
  unsigned NumRegs = F.NumRegs;
  forEachSegment(F, [NumRegs, Stats,
                     Objective](std::vector<U0Instr> &Segment) {
    scheduleBitsliceSegment(Segment, NumRegs, Stats, Objective);
  });
}

void usuba::scheduleMSlice(U0Function &F, const Arch &Target,
                           MSliceScheduleStats *Stats,
                           ScheduleObjective Objective) {
  // "a look-behind window of the previous 16 instructions (which
  // corresponds to the maximal number of registers available on Intel
  // platforms without AVX512)".
  unsigned WindowLimit = Target.NumRegisters >= 32 ? 32 : 16;
  if (Stats)
    Stats->WindowLimit = WindowLimit;
  unsigned NumRegs = F.NumRegs;
  forEachSegment(F, [NumRegs, WindowLimit, Stats,
                     Objective](std::vector<U0Instr> &Segment) {
    scheduleMSliceSegment(Segment, NumRegs, WindowLimit, Stats, Objective);
  });
}

void usuba::stripBarriers(U0Function &F) {
  std::vector<U0Instr> Kept;
  Kept.reserve(F.Instrs.size());
  for (U0Instr &I : F.Instrs)
    if (I.Op != U0Op::Barrier)
      Kept.push_back(std::move(I));
  F.Instrs = std::move(Kept);
}
