//===- NativeJit.cpp - Compile-and-load execution of emitted C ------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cbackend/NativeJit.h"

#include <dlfcn.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace usuba;

namespace {

std::string hostCompiler() {
  if (const char *Env = std::getenv("USUBA_CC"))
    return Env;
  if (const char *Env = std::getenv("CC"))
    return Env;
  return "cc";
}

/// Unique scratch path under TMPDIR for this process.
std::string scratchPath(const std::string &Stem, const char *Ext) {
  static std::atomic<unsigned> Counter{0};
  const char *Base = std::getenv("TMPDIR");
  std::string Dir = Base ? Base : "/tmp";
  return Dir + "/" + Stem + "-" + std::to_string(getpid()) + "-" +
         std::to_string(Counter.fetch_add(1)) + Ext;
}

int runCommand(const std::string &Command) {
  int Status = std::system(Command.c_str());
  if (Status == -1)
    return -1;
  return WIFEXITED(Status) ? WEXITSTATUS(Status) : -1;
}

} // namespace

NativeKernel::~NativeKernel() {
  if (Handle)
    dlclose(Handle);
}

NativeKernel::NativeKernel(NativeKernel &&Other) noexcept
    : Handle(Other.Handle), Fn(Other.Fn),
      CompileSeconds(Other.CompileSeconds) {
  Other.Handle = nullptr;
  Other.Fn = nullptr;
}

bool NativeKernel::hostCompilerAvailable() {
  static const bool Available = [] {
    std::string Probe = scratchPath("usuba-probe", ".c");
    {
      std::ofstream Src(Probe);
      Src << "int usuba_probe(void){return 42;}\n";
    }
    std::string Object = Probe + ".so";
    int Status = runCommand(hostCompiler() + " -shared -fPIC -o " + Object +
                            " " + Probe + " >/dev/null 2>&1");
    std::remove(Probe.c_str());
    std::remove(Object.c_str());
    return Status == 0;
  }();
  return Available;
}

std::optional<NativeKernel> NativeKernel::compile(const EmittedC &Emitted,
                                                  const std::string &OptLevel,
                                                  std::string *Error) {
  auto Fail = [&](const std::string &Why) -> std::optional<NativeKernel> {
    if (Error)
      *Error = Why;
    return std::nullopt;
  };
  if (!hostCompilerAvailable())
    return Fail("no host C compiler available (set USUBA_CC)");

  std::string Source = scratchPath("usuba-kernel", ".c");
  std::string Object = scratchPath("usuba-kernel", ".so");
  {
    std::ofstream Src(Source);
    if (!Src)
      return Fail("cannot write " + Source);
    Src << Emitted.Code;
  }

  std::string Command = hostCompiler() + " " + OptLevel +
                        " -shared -fPIC -fno-lto";
  for (const std::string &Flag : Emitted.CompilerFlags)
    Command += " " + Flag;
  Command += " -o " + Object + " " + Source + " 2>/dev/null";

  auto Start = std::chrono::steady_clock::now();
  int Status = runCommand(Command);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  std::remove(Source.c_str());
  if (Status != 0) {
    std::remove(Object.c_str());
    return Fail("host compiler failed (exit " + std::to_string(Status) +
                ")");
  }

  void *Handle = dlopen(Object.c_str(), RTLD_NOW | RTLD_LOCAL);
  // The object can be unlinked once mapped.
  std::remove(Object.c_str());
  if (!Handle)
    return Fail(std::string("dlopen failed: ") + dlerror());
  void *Sym = dlsym(Handle, "usuba_kernel");
  if (!Sym) {
    dlclose(Handle);
    return Fail("usuba_kernel symbol not found");
  }
  return NativeKernel(Handle, reinterpret_cast<KernelFn>(Sym), Seconds);
}

std::optional<NativeKernel> usuba::jitCompile(const CompiledKernel &Kernel,
                                              const std::string &OptLevel,
                                              std::string *Error) {
  return NativeKernel::compile(emitC(Kernel.Prog), OptLevel, Error);
}

bool usuba::hostSupports(const Arch &Target) {
  switch (Target.Kind) {
  case ArchKind::GP64:
    return true;
  case ArchKind::SSE:
    return __builtin_cpu_supports("sse4.2") ||
           __builtin_cpu_supports("ssse3");
  case ArchKind::AVX:
    return __builtin_cpu_supports("avx");
  case ArchKind::AVX2:
    return __builtin_cpu_supports("avx2");
  case ArchKind::AVX512:
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") &&
           __builtin_cpu_supports("avx512vbmi");
  case ArchKind::Neon:
    return false; // no C backend for Neon: always the simulator
  }
  return false;
}
