//===- NativeJit.cpp - Compile-and-load execution of emitted C ------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "cbackend/NativeJit.h"

#include "support/Telemetry.h"

#include <dlfcn.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <vector>

using namespace usuba;

namespace {

std::string hostCompiler() {
  if (const char *Env = std::getenv("USUBA_CC"))
    return Env;
  if (const char *Env = std::getenv("CC"))
    return Env;
  return "cc";
}

/// POSIX shell single-quoting: the result is one word, with no
/// interpolation, whatever bytes the path or compiler name contains.
std::string shellQuote(const std::string &Arg) {
  std::string Out;
  Out.reserve(Arg.size() + 2);
  Out += '\'';
  for (char C : Arg) {
    if (C == '\'')
      Out += "'\\''";
    else
      Out += C;
  }
  Out += '\'';
  return Out;
}

/// Wall-clock budget for one host-compiler invocation. 0 disables the
/// timeout.
unsigned compileTimeoutMillis() {
  if (const char *Env = std::getenv("USUBA_CC_TIMEOUT_MS")) {
    char *End = nullptr;
    unsigned long Value = std::strtoul(Env, &End, 10);
    if (End != Env && *End == '\0')
      return static_cast<unsigned>(Value);
  }
  return 120000;
}

/// An mkdtemp-created private directory, removed (with the files handed
/// out by file()) on destruction. Keeps kernel sources out of
/// world-readable predictable paths and never leaks scratch files, even
/// on the error paths.
class TempDir {
public:
  TempDir() {
    const char *Base = std::getenv("TMPDIR");
    std::string Template =
        (Base && *Base ? std::string(Base) : std::string("/tmp")) +
        "/usuba-jit-XXXXXX";
    std::vector<char> Buf(Template.begin(), Template.end());
    Buf.push_back('\0');
    if (mkdtemp(Buf.data()))
      Path = Buf.data();
  }
  ~TempDir() {
    if (Path.empty())
      return;
    for (const std::string &F : Files)
      std::remove(F.c_str());
    rmdir(Path.c_str());
  }
  TempDir(const TempDir &) = delete;
  TempDir &operator=(const TempDir &) = delete;

  bool valid() const { return !Path.empty(); }
  /// Returns Path/Name and schedules it for removal.
  std::string file(const char *Name) {
    Files.push_back(Path + "/" + Name);
    return Files.back();
  }

private:
  std::string Path;
  std::vector<std::string> Files;
};

enum class RunResult { Ok, Failed, TimedOut };
struct RunOutcome {
  RunResult Result;
  int ExitCode;
};

/// Runs \p Command through /bin/sh in its own process group. If it is
/// still running after \p TimeoutMillis (0 = wait forever), the whole
/// group — shell plus any compiler subprocesses — is killed.
RunOutcome runCommandWithTimeout(const std::string &Command,
                                 unsigned TimeoutMillis) {
  pid_t Pid = fork();
  if (Pid < 0)
    return {RunResult::Failed, -1};
  if (Pid == 0) {
    setpgid(0, 0);
    execl("/bin/sh", "sh", "-c", Command.c_str(),
          static_cast<char *>(nullptr));
    _exit(127);
  }
  // Also set the group from the parent: whichever side wins, the group
  // exists before we might need to signal it. EACCES after the child
  // exec'd is fine — the child already placed itself.
  setpgid(Pid, Pid);
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMillis);
  for (;;) {
    int Status = 0;
    pid_t Done = waitpid(Pid, &Status, TimeoutMillis ? WNOHANG : 0);
    if (Done == Pid) {
      if (WIFEXITED(Status))
        return {WEXITSTATUS(Status) == 0 ? RunResult::Ok : RunResult::Failed,
                WEXITSTATUS(Status)};
      return {RunResult::Failed, -1};
    }
    if (Done < 0)
      return {RunResult::Failed, -1};
    if (TimeoutMillis && std::chrono::steady_clock::now() >= Deadline) {
      kill(-Pid, SIGKILL);
      waitpid(Pid, &Status, 0);
      return {RunResult::TimedOut, -1};
    }
    usleep(2000);
  }
}

/// The lower optimization level tried after a failed or timed-out
/// compile ("" = no retry): large emitted kernels occasionally hit
/// host-compiler pathologies at high -O, and a cheap second attempt
/// beats losing the native engine entirely.
std::string retryLevelFor(const std::string &OptLevel) {
  if (OptLevel == "-O0")
    return "";
  if (OptLevel == "-O1")
    return "-O0";
  return "-O1";
}

} // namespace

std::string JitError::str() const {
  const char *Name = "ok";
  switch (Kind) {
  case Reason::None:
    return Detail.empty() ? "ok" : Detail;
  case Reason::NoCompiler:
    Name = "no-compiler";
    break;
  case Reason::WriteFailed:
    Name = "write-failed";
    break;
  case Reason::CompileFailed:
    Name = "compile-failed";
    break;
  case Reason::Timeout:
    Name = "timeout";
    break;
  case Reason::LoadFailed:
    Name = "load-failed";
    break;
  case Reason::SymbolMissing:
    Name = "symbol-missing";
    break;
  }
  return std::string(Name) + ": " + Detail;
}

NativeKernel::~NativeKernel() {
  if (Handle)
    dlclose(Handle);
}

NativeKernel::NativeKernel(NativeKernel &&Other) noexcept
    : Handle(Other.Handle), Fn(Other.Fn),
      CompileSeconds(Other.CompileSeconds) {
  Other.Handle = nullptr;
  Other.Fn = nullptr;
}

bool NativeKernel::hostCompilerAvailable() {
  // Cached per compiler *name*, not once per process: tests point
  // USUBA_CC at deliberately broken compilers and must not poison the
  // result for the real one.
  static std::mutex CacheMutex;
  static std::map<std::string, bool> Cache;
  std::string Compiler = hostCompiler();
  std::lock_guard<std::mutex> Lock(CacheMutex);
  auto It = Cache.find(Compiler);
  if (It != Cache.end())
    return It->second;
  bool Available = [&] {
    TempDir Dir;
    if (!Dir.valid())
      return false;
    std::string Probe = Dir.file("usuba-probe.c");
    {
      std::ofstream Src(Probe);
      Src << "int usuba_probe(void){return 42;}\n";
      if (!Src)
        return false;
    }
    std::string Object = Dir.file("usuba-probe.so");
    RunOutcome Out = runCommandWithTimeout(
        shellQuote(Compiler) + " -shared -fPIC -o " + shellQuote(Object) +
            " " + shellQuote(Probe) + " >/dev/null 2>&1",
        compileTimeoutMillis());
    return Out.Result == RunResult::Ok;
  }();
  Cache.emplace(std::move(Compiler), Available);
  return Available;
}

std::optional<NativeKernel> NativeKernel::compile(const EmittedC &Emitted,
                                                  const std::string &OptLevel,
                                                  JitError *Error,
                                                  unsigned TimeoutMillis) {
  TelemetrySpan JitSpan("jit.compile");
  telemetryCount("jit.attempts");
  auto Fail = [&](JitError::Reason Kind,
                  std::string Why) -> std::optional<NativeKernel> {
    telemetryCount("jit.failures");
    if (Error)
      *Error = {Kind, std::move(Why)};
    return std::nullopt;
  };
  if (!hostCompilerAvailable())
    return Fail(JitError::Reason::NoCompiler,
                "no host C compiler available (set USUBA_CC)");

  TempDir Dir;
  if (!Dir.valid())
    return Fail(JitError::Reason::WriteFailed,
                "cannot create a temporary directory under $TMPDIR");
  std::string Source = Dir.file("usuba-kernel.c");
  std::string Object = Dir.file("usuba-kernel.so");
  {
    std::ofstream Src(Source);
    Src << Emitted.Code;
    Src.flush();
    if (!Src)
      return Fail(JitError::Reason::WriteFailed, "cannot write " + Source);
  }

  auto CommandFor = [&](const std::string &Level) {
    std::string Command =
        shellQuote(hostCompiler()) + " " + Level + " -shared -fPIC -fno-lto";
    for (const std::string &Flag : Emitted.CompilerFlags)
      Command += " " + Flag;
    Command +=
        " -o " + shellQuote(Object) + " " + shellQuote(Source) + " 2>/dev/null";
    return Command;
  };

  if (!TimeoutMillis)
    TimeoutMillis = compileTimeoutMillis();
  auto Start = std::chrono::steady_clock::now();
  RunOutcome Out = runCommandWithTimeout(CommandFor(OptLevel), TimeoutMillis);
  std::string Retry = retryLevelFor(OptLevel);
  if (Out.Result != RunResult::Ok && !Retry.empty())
    Out = runCommandWithTimeout(CommandFor(Retry), TimeoutMillis);
  double Seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Out.Result == RunResult::TimedOut)
    return Fail(JitError::Reason::Timeout,
                "host compiler exceeded " + std::to_string(TimeoutMillis) +
                    " ms (CcTimeoutMillis / USUBA_CC_TIMEOUT_MS)");
  if (Out.Result != RunResult::Ok)
    return Fail(JitError::Reason::CompileFailed,
                "host compiler failed (exit " + std::to_string(Out.ExitCode) +
                    ")");

  void *Handle = dlopen(Object.c_str(), RTLD_NOW | RTLD_LOCAL);
  // The object (and the whole temp dir) can be unlinked once mapped.
  if (!Handle)
    return Fail(JitError::Reason::LoadFailed,
                std::string("dlopen failed: ") + dlerror());
  void *Sym = dlsym(Handle, "usuba_kernel");
  if (!Sym) {
    dlclose(Handle);
    return Fail(JitError::Reason::SymbolMissing,
                "usuba_kernel symbol not found");
  }
  return NativeKernel(Handle, reinterpret_cast<KernelFn>(Sym), Seconds);
}

std::optional<NativeKernel> usuba::jitCompile(const CompiledKernel &Kernel,
                                              const std::string &OptLevel,
                                              JitError *Error,
                                              unsigned TimeoutMillis) {
  return NativeKernel::compile(emitC(Kernel.Prog), OptLevel, Error,
                               TimeoutMillis);
}

bool usuba::hostSupports(const Arch &Target) {
  // The CPUID probe lives with the architecture model (types/Arch) so the
  // runtime dispatcher and the JIT share one source of truth.
  return archSupported(Target);
}
