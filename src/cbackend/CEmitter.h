//===- CEmitter.h - C code generation with SIMD intrinsics ------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Usubac's final pass (paper Section 3): translation of Usuba0 to C with
/// intrinsics for the target instruction set. The generated translation
/// unit is self-contained and exposes
///
/// \code
///   void usuba_kernel(const uint64_t *in, uint64_t *out);
/// \endcode
///
/// where input register i occupies words [i*W, (i+1)*W) of \c in (W =
/// register width / 64) and output register j likewise in \c out — the
/// dense ABI KernelRunner::setNativeFn expects.
///
/// Instruction selection follows Table 1: bitwise logic at every level;
/// vpadd/vpsub/vpmullo for vertical arithmetic; vpsll/vpsrl (plus
/// masking for 8-bit elements) for vertical shifts; vprol on AVX512;
/// pshufb/vpshufb (with a lane-swap fix-up on AVX2) and vpermw/vpermd on
/// AVX512 for horizontal shuffles. Scalar (GP64) code uses the classic
/// SWAR formulas so that multiple-element registers remain bit-exact
/// with the simulator.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CBACKEND_CEMITTER_H
#define USUBA_CBACKEND_CEMITTER_H

#include "core/Usuba0.h"

#include <string>
#include <vector>

namespace usuba {

/// Result of emission: the C translation unit plus the compiler flags the
/// target requires (so SSE-targeted code is really compiled without AVX).
struct EmittedC {
  std::string Code;
  std::vector<std::string> CompilerFlags;
};

/// Emits C for \p Prog. When \p InlineAll is false, non-entry functions
/// become static C functions and calls are emitted as calls (hundreds of
/// arguments for bitsliced code — faithfully reproducing the cost the
/// paper's inlining discussion measures); the default emits the entry
/// only, which the pipeline has already fully inlined.
EmittedC emitC(const U0Program &Prog);

} // namespace usuba

#endif // USUBA_CBACKEND_CEMITTER_H
