//===- NativeJit.h - Compile-and-load execution of emitted C ----*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime compilation of the C emitted by CEmitter: write the
/// translation unit to a temporary directory, invoke the host C compiler
/// (${USUBA_CC}, ${CC} or cc) with the target's ISA flags, dlopen the
/// shared object and resolve `usuba_kernel`. This is how the benchmarks
/// obtain real-machine numbers; when no host compiler exists the callers
/// fall back to the SIMD simulator.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CBACKEND_NATIVEJIT_H
#define USUBA_CBACKEND_NATIVEJIT_H

#include "cbackend/CEmitter.h"
#include "core/Compiler.h"

#include <memory>
#include <optional>
#include <string>

namespace usuba {

/// A loaded native kernel. Owns the dlopen handle; the function pointer
/// dies with this object.
class NativeKernel {
public:
  using KernelFn = void (*)(const uint64_t *In, uint64_t *Out);

  ~NativeKernel();
  NativeKernel(NativeKernel &&Other) noexcept;
  NativeKernel &operator=(NativeKernel &&) = delete;

  KernelFn fn() const { return Fn; }
  /// Wall-clock seconds the host compiler took (reported by benches: the
  /// paper's C files are large and compiler behavior matters).
  double compileSeconds() const { return CompileSeconds; }

  /// Compiles \p Emitted at the given optimization level. Returns
  /// std::nullopt (with a reason in \p Error) when no compiler is
  /// available or compilation fails. Extra flags are appended, letting
  /// benches sweep compiler options.
  static std::optional<NativeKernel>
  compile(const EmittedC &Emitted, const std::string &OptLevel = "-O3",
          std::string *Error = nullptr);

  /// True when a host C compiler appears usable (cached probe).
  static bool hostCompilerAvailable();

private:
  NativeKernel(void *Handle, KernelFn Fn, double CompileSeconds)
      : Handle(Handle), Fn(Fn), CompileSeconds(CompileSeconds) {}

  void *Handle = nullptr;
  KernelFn Fn = nullptr;
  double CompileSeconds = 0;
};

/// Convenience: emit C for \p Kernel and JIT it. The host must support
/// the kernel's target ISA to *run* it (callers check hostSupports()).
std::optional<NativeKernel> jitCompile(const CompiledKernel &Kernel,
                                       const std::string &OptLevel = "-O3",
                                       std::string *Error = nullptr);

/// True when the machine running this process can execute code for
/// \p Target (checked via CPUID-backed GCC builtins).
bool hostSupports(const Arch &Target);

} // namespace usuba

#endif // USUBA_CBACKEND_NATIVEJIT_H
