//===- NativeJit.h - Compile-and-load execution of emitted C ----*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime compilation of the C emitted by CEmitter: write the
/// translation unit to a private mkdtemp directory, invoke the host C
/// compiler (${USUBA_CC}, ${CC} or cc) with the target's ISA flags under
/// a wall-clock timeout, dlopen the shared object and resolve
/// `usuba_kernel`. This is how the benchmarks obtain real-machine
/// numbers; when no host compiler exists — or it fails or hangs — the
/// callers degrade to the SIMD simulator (see KernelRunner's
/// degradation ladder).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_CBACKEND_NATIVEJIT_H
#define USUBA_CBACKEND_NATIVEJIT_H

#include "cbackend/CEmitter.h"
#include "core/Compiler.h"

#include <memory>
#include <optional>
#include <string>

namespace usuba {

/// A structured report of why the native JIT path was not taken. The
/// degradation ladder in KernelRunner/UsubaCipher records str() so users
/// can see which rung failed; tests switch on Kind.
struct JitError {
  enum class Reason {
    None,          ///< no error recorded
    NoCompiler,    ///< probe found no usable host C compiler
    WriteFailed,   ///< could not create the temp dir or source file
    CompileFailed, ///< host compiler exited nonzero (after the retry)
    Timeout,       ///< host compiler exceeded the wall-clock budget
    LoadFailed,    ///< dlopen rejected the produced object
    SymbolMissing, ///< the object does not export usuba_kernel
  };
  Reason Kind = Reason::None;
  std::string Detail;

  std::string str() const;
};

/// A loaded native kernel. Owns the dlopen handle; the function pointer
/// dies with this object.
class NativeKernel {
public:
  using KernelFn = void (*)(const uint64_t *In, uint64_t *Out);

  ~NativeKernel();
  NativeKernel(NativeKernel &&Other) noexcept;
  NativeKernel &operator=(NativeKernel &&) = delete;

  KernelFn fn() const { return Fn; }
  /// Wall-clock seconds the host compiler took (reported by benches: the
  /// paper's C files are large and compiler behavior matters).
  double compileSeconds() const { return CompileSeconds; }

  /// Compiles \p Emitted at the given optimization level. The host
  /// compiler runs under a wall-clock timeout and a failed or timed-out
  /// compile is retried once at a lower optimization level before giving
  /// up. \p TimeoutMillis = 0 defers to USUBA_CC_TIMEOUT_MS (default
  /// 120000 ms); callers with a typed CipherConfig pass
  /// effectiveCcTimeoutMillis() explicitly. Returns std::nullopt with a
  /// structured reason in \p Error when the kernel could not be
  /// produced. Extra flags are appended, letting benches sweep compiler
  /// options.
  static std::optional<NativeKernel>
  compile(const EmittedC &Emitted, const std::string &OptLevel = "-O3",
          JitError *Error = nullptr, unsigned TimeoutMillis = 0);

  /// True when a host C compiler appears usable. The probe result is
  /// cached per compiler name, so tests can flip USUBA_CC between
  /// probes.
  static bool hostCompilerAvailable();

private:
  NativeKernel(void *Handle, KernelFn Fn, double CompileSeconds)
      : Handle(Handle), Fn(Fn), CompileSeconds(CompileSeconds) {}

  void *Handle = nullptr;
  KernelFn Fn = nullptr;
  double CompileSeconds = 0;
};

/// Convenience: emit C for \p Kernel and JIT it. The host must support
/// the kernel's target ISA to *run* it (callers check hostSupports()).
/// \p TimeoutMillis = 0 defers to USUBA_CC_TIMEOUT_MS / the default.
std::optional<NativeKernel> jitCompile(const CompiledKernel &Kernel,
                                       const std::string &OptLevel = "-O3",
                                       JitError *Error = nullptr,
                                       unsigned TimeoutMillis = 0);

/// True when the machine running this process can execute code for
/// \p Target (checked via CPUID-backed GCC builtins).
bool hostSupports(const Arch &Target);

} // namespace usuba

#endif // USUBA_CBACKEND_NATIVEJIT_H
