//===- Histogram.h - Lock-free log-bucketed histograms ----------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lock-free, fixed-footprint latency histogram for the serving path.
///
/// Values are bucketed HDR-style: exact buckets below 2^SubBits, then
/// SubBuckets logarithmic sub-buckets per power of two, which bounds the
/// relative quantile error at 1/SubBuckets (~3% with SubBits = 5) over
/// the full uint64 range. record() is two relaxed fetch_adds plus one
/// bucket fetch_add — no locks, no allocation — so it is safe on the
/// service hot path and from signal-free contexts on any thread.
///
/// snapshot() copies the buckets into a plain Snapshot that can be
/// merged (across shards/combos), subtracted (interval deltas between
/// two snapshots of the same histogram) and queried for percentiles.
/// A snapshot taken concurrently with writers is not an atomic cut of
/// the whole histogram — Count/Sum and the buckets are read
/// independently — but every individual cell is exact, which is the
/// right trade for monitoring.
///
/// Gauge is the companion point-in-time value (queue depth, open
/// sessions): one relaxed atomic int64 with set/add semantics.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_HISTOGRAM_H
#define USUBA_SUPPORT_HISTOGRAM_H

#include <array>
#include <atomic>
#include <cstdint>

namespace usuba {

class Histogram {
public:
  /// Sub-bucket resolution: 2^SubBits logarithmic sub-buckets per
  /// octave, values below 2^SubBits are bucketed exactly.
  static constexpr unsigned SubBits = 5;
  static constexpr unsigned SubBuckets = 1u << SubBits;
  /// One exact group plus one group per octave from SubBits to 63.
  static constexpr unsigned NumBuckets = (64 - SubBits + 1) * SubBuckets;

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  /// Records one value. Lock-free: three relaxed fetch_adds.
  void record(uint64_t Value) {
    CountCell.fetch_add(1, std::memory_order_relaxed);
    SumCell.fetch_add(Value, std::memory_order_relaxed);
    Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
  }

  /// A plain (non-atomic) copy of the histogram state.
  struct Snapshot {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    std::array<uint64_t, NumBuckets> Buckets{};

    /// Value at quantile \p P in [0, 1] (0.5 = median). Returns the
    /// representative (midpoint) value of the bucket holding that rank;
    /// 0 when the snapshot is empty.
    uint64_t percentile(double P) const;
    double mean() const {
      return Count ? static_cast<double>(Sum) / static_cast<double>(Count)
                   : 0.0;
    }
    /// Adds \p Other into this snapshot (cross-shard aggregation).
    void merge(const Snapshot &Other);
    /// Subtracts an \p Earlier snapshot of the same histogram, leaving
    /// the interval between the two (saturating at zero per cell, so a
    /// racy pair of snapshots can never underflow).
    void subtract(const Snapshot &Earlier);
  };

  /// Copies the current state. Safe concurrently with record(); see the
  /// file comment for the (non-)atomicity contract.
  Snapshot snapshot() const;

  /// Zeroes every cell. Safe concurrently with record() — a racing
  /// record may land partially before/after the sweep, which snapshot
  /// arithmetic tolerates by saturation.
  void reset();

  uint64_t count() const { return CountCell.load(std::memory_order_relaxed); }
  uint64_t sum() const { return SumCell.load(std::memory_order_relaxed); }

  /// Bucket mapping, exposed for tests: index for a value and the
  /// representative value reported for an index.
  static unsigned bucketIndex(uint64_t Value);
  static uint64_t bucketValue(unsigned Index);

private:
  std::atomic<uint64_t> CountCell{0};
  std::atomic<uint64_t> SumCell{0};
  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
};

/// A point-in-time value (queue depth, open sessions, fill percent).
class Gauge {
public:
  void set(int64_t V) { Value.store(V, std::memory_order_relaxed); }
  void add(int64_t Delta) { Value.fetch_add(Delta, std::memory_order_relaxed); }
  int64_t value() const { return Value.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

} // namespace usuba

#endif // USUBA_SUPPORT_HISTOGRAM_H
