//===- BitUtils.h - Bit-twiddling helpers -----------------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small bit-manipulation helpers shared by the SIMD simulator, the
/// transposition runtime and the reference ciphers. Bit index conventions:
/// unless stated otherwise, bit 0 is the least-significant bit.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_BITUTILS_H
#define USUBA_SUPPORT_BITUTILS_H

#include <cassert>
#include <cstdint>

namespace usuba {

/// A mask with the low \p Bits bits set. \p Bits must be in [1, 64].
constexpr uint64_t lowBitMask(unsigned Bits) {
  assert(Bits >= 1 && Bits <= 64 && "mask width out of range");
  return Bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << Bits) - 1);
}

/// Extracts bit \p Index (LSB = 0) of \p Value.
constexpr uint64_t getBit(uint64_t Value, unsigned Index) {
  assert(Index < 64 && "bit index out of range");
  return (Value >> Index) & 1;
}

/// Returns \p Value with bit \p Index set to \p Bit (0 or 1).
constexpr uint64_t setBit(uint64_t Value, unsigned Index, uint64_t Bit) {
  assert(Index < 64 && "bit index out of range");
  assert(Bit <= 1 && "bit value must be 0 or 1");
  return (Value & ~(uint64_t{1} << Index)) | (Bit << Index);
}

/// Rotates the low \p Width bits of \p Value left by \p Amount. Bits above
/// \p Width must be zero and stay zero.
constexpr uint64_t rotateLeft(uint64_t Value, unsigned Amount,
                              unsigned Width) {
  assert(Width >= 1 && Width <= 64 && "rotate width out of range");
  assert((Value & ~lowBitMask(Width)) == 0 && "value wider than Width");
  Amount %= Width;
  if (Amount == 0)
    return Value;
  return ((Value << Amount) | (Value >> (Width - Amount))) &
         lowBitMask(Width);
}

/// Rotates the low \p Width bits of \p Value right by \p Amount.
constexpr uint64_t rotateRight(uint64_t Value, unsigned Amount,
                               unsigned Width) {
  Amount %= Width;
  return rotateLeft(Value, Width - Amount == Width ? 0 : Width - Amount,
                    Width);
}

/// Reverses the byte order of \p Value. The swap ladder is the idiom
/// compilers recognize and lower to a single bswap instruction.
constexpr uint64_t byteSwap64(uint64_t Value) {
  Value = ((Value & 0x00FF00FF00FF00FFull) << 8) |
          ((Value >> 8) & 0x00FF00FF00FF00FFull);
  Value = ((Value & 0x0000FFFF0000FFFFull) << 16) |
          ((Value >> 16) & 0x0000FFFF0000FFFFull);
  return (Value << 32) | (Value >> 32);
}

/// In-place transposition of a 64x64 bit matrix stored as 64 row words
/// (row r bit c == M[r] bit c). Classic Hacker's Delight block-swap; used
/// by the bitslice transposition fast path.
void transpose64x64(uint64_t M[64]);

/// True if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

} // namespace usuba

#endif // USUBA_SUPPORT_BITUTILS_H
