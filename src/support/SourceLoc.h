//===- SourceLoc.h - Source positions for diagnostics ----------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source positions attached to tokens, AST nodes and
/// diagnostics. Usuba programs are small (a few hundred lines), so a plain
/// line/column pair is all we need.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_SOURCELOC_H
#define USUBA_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace usuba {

/// A (line, column) position within an Usuba source buffer. Lines and
/// columns are 1-based; a default-constructed location is "unknown".
struct SourceLoc {
  uint32_t Line = 0;
  uint32_t Column = 0;

  constexpr SourceLoc() = default;
  constexpr SourceLoc(uint32_t Line, uint32_t Column)
      : Line(Line), Column(Column) {}

  constexpr bool isValid() const { return Line != 0; }

  friend constexpr bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Column == B.Column;
  }

  /// Renders "line:column", or "<unknown>" for an invalid location.
  std::string str() const {
    if (!isValid())
      return "<unknown>";
    return std::to_string(Line) + ":" + std::to_string(Column);
  }
};

} // namespace usuba

#endif // USUBA_SUPPORT_SOURCELOC_H
