//===- BitUtils.cpp - Bit-twiddling helpers -------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/BitUtils.h"

using namespace usuba;

void usuba::transpose64x64(uint64_t M[64]) {
  // Swap progressively smaller off-diagonal blocks: 32x32, 16x16, ... 1x1.
  // After round k, blocks of size 2^k along the diagonal are transposed.
  unsigned BlockSize = 32;
  uint64_t Mask = 0x00000000FFFFFFFFull;
  while (BlockSize != 0) {
    // Visit every row whose BlockSize bit is clear; it pairs with the row
    // BlockSize above it.
    for (unsigned Row = 0; Row < 64; Row = (Row + BlockSize + 1) & ~BlockSize) {
      uint64_t Delta = (M[Row] >> BlockSize ^ M[Row + BlockSize]) & Mask;
      M[Row] ^= Delta << BlockSize;
      M[Row + BlockSize] ^= Delta;
    }
    BlockSize >>= 1;
    Mask ^= Mask << BlockSize;
  }
}
