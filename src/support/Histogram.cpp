//===- Histogram.cpp - Lock-free log-bucketed histograms ------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>

using namespace usuba;

unsigned Histogram::bucketIndex(uint64_t Value) {
  if (Value < SubBuckets)
    return static_cast<unsigned>(Value);
  // Major is the bit position of the leading one (>= SubBits here); the
  // sub-bucket is the next SubBits bits below it.
  unsigned Major = 63u - static_cast<unsigned>(std::countl_zero(Value));
  unsigned Sub =
      static_cast<unsigned>((Value >> (Major - SubBits)) & (SubBuckets - 1));
  return (Major - SubBits + 1) * SubBuckets + Sub;
}

uint64_t Histogram::bucketValue(unsigned Index) {
  if (Index < SubBuckets)
    return Index; // exact group
  unsigned Group = Index / SubBuckets;
  unsigned Sub = Index % SubBuckets;
  unsigned Major = Group + SubBits - 1;
  uint64_t Lower = (uint64_t{1} << Major) |
                   (static_cast<uint64_t>(Sub) << (Major - SubBits));
  uint64_t Width = uint64_t{1} << (Major - SubBits);
  return Lower + Width / 2;
}

uint64_t Histogram::Snapshot::percentile(double P) const {
  if (Count == 0)
    return 0;
  P = std::clamp(P, 0.0, 1.0);
  // Rank in [1, Count]: the smallest bucket whose cumulative count
  // covers it. A snapshot racing writers can have sum(Buckets) !=
  // Count; the fallthrough returns the largest populated bucket.
  uint64_t Target =
      static_cast<uint64_t>(P * static_cast<double>(Count - 1)) + 1;
  uint64_t Cumulative = 0;
  unsigned LastPopulated = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    if (!Buckets[I])
      continue;
    LastPopulated = I;
    Cumulative += Buckets[I];
    if (Cumulative >= Target)
      return bucketValue(I);
  }
  return bucketValue(LastPopulated);
}

void Histogram::Snapshot::merge(const Snapshot &Other) {
  Count += Other.Count;
  Sum += Other.Sum;
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets[I] += Other.Buckets[I];
}

void Histogram::Snapshot::subtract(const Snapshot &Earlier) {
  Count = Count > Earlier.Count ? Count - Earlier.Count : 0;
  Sum = Sum > Earlier.Sum ? Sum - Earlier.Sum : 0;
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets[I] =
        Buckets[I] > Earlier.Buckets[I] ? Buckets[I] - Earlier.Buckets[I] : 0;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  S.Count = CountCell.load(std::memory_order_relaxed);
  S.Sum = SumCell.load(std::memory_order_relaxed);
  for (unsigned I = 0; I < NumBuckets; ++I)
    S.Buckets[I] = Buckets[I].load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  CountCell.store(0, std::memory_order_relaxed);
  SumCell.store(0, std::memory_order_relaxed);
  for (unsigned I = 0; I < NumBuckets; ++I)
    Buckets[I].store(0, std::memory_order_relaxed);
}
