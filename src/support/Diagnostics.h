//===- Diagnostics.h - Error reporting for the Usubac pipeline --*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Every front-end stage (lexer, parser, type
/// checker, elaboration) reports through a DiagnosticEngine instead of
/// printing or throwing; callers inspect hasErrors() to decide whether the
/// pipeline may continue. This mirrors the recoverable-error discipline of
/// production compilers without using exceptions for *user* errors.
///
/// Compiler-invariant violations are a separate channel: USUBA_ICE raises
/// an InternalCompilerError that unwinds to the nearest pipeline boundary
/// (compileUsuba / a pass checkpoint), where it is converted into a
/// DiagSeverity::Fatal diagnostic. Unlike assert(), ICEs stay armed in
/// NDEBUG builds — a malformed IR in a Release build must fail loudly,
/// never miscompile a cipher silently.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_DIAGNOSTICS_H
#define USUBA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace usuba {

/// Fatal is reserved for internal compiler errors surfaced through the
/// ICE channel; user-facing problems are at most Error.
enum class DiagSeverity { Note, Warning, Error, Fatal };

/// One reported diagnostic: severity, position and rendered message.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders "error: 3:14: message" in the style used by the CLI driver.
  std::string str() const;
};

/// The exception raised by USUBA_ICE. It never escapes the public
/// compiler entry points: compileUsuba/compileAst (and every pass
/// checkpoint) catch it and degrade into diagnostics, so callers keep the
/// plain std::optional contract.
struct InternalCompilerError {
  const char *File = "";
  unsigned Line = 0;
  std::string Message;

  /// Renders "internal compiler error: message [File:Line]".
  std::string str() const;
};

/// Raises an InternalCompilerError. Out of line so the cold path does not
/// bloat the checks sprinkled through the passes.
[[noreturn]] void reportInternalError(const char *File, unsigned Line,
                                      std::string Message);

/// Signals a broken compiler invariant. Active regardless of NDEBUG.
#define USUBA_ICE(Message)                                                   \
  ::usuba::reportInternalError(__FILE__, __LINE__, (Message))

/// assert()-shaped ICE check for invariants that would otherwise
/// miscompile in Release builds.
#define USUBA_ICE_CHECK(Cond, Message)                                      \
  do {                                                                      \
    if (!(Cond))                                                            \
      USUBA_ICE(Message);                                                   \
  } while (false)

/// Collects diagnostics emitted during a compilation. The engine is passed
/// by reference through the pipeline; it never aborts the process.
///
/// Errors are capped (default 50): once the cap is reached further errors
/// are counted but not stored, and a single "too many errors" diagnostic
/// marks the truncation — hostile inputs cannot flood memory.
class DiagnosticEngine {
public:
  static constexpr unsigned DefaultErrorLimit = 50;

  void error(SourceLoc Loc, std::string Message);
  void fatal(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  bool hasFatal() const { return NumFatals != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Caps the number of *stored* errors; 0 means unlimited. Fatal
  /// diagnostics are always stored.
  void setErrorLimit(unsigned Limit) { ErrorLimit = Limit; }
  unsigned errorLimit() const { return ErrorLimit; }

  /// Renders every diagnostic, one per line (used by tests and the CLI).
  std::string str() const;

  /// Drops all collected diagnostics, e.g. between independent compiles.
  void clear() {
    Diags.clear();
    NumErrors = 0;
    NumFatals = 0;
    Saturated = false;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumFatals = 0;
  unsigned ErrorLimit = DefaultErrorLimit;
  bool Saturated = false;
};

} // namespace usuba

#endif // USUBA_SUPPORT_DIAGNOSTICS_H
