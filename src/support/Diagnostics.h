//===- Diagnostics.h - Error reporting for the Usubac pipeline --*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostic engine. Every front-end stage (lexer, parser, type
/// checker, elaboration) reports through a DiagnosticEngine instead of
/// printing or throwing; callers inspect hasErrors() to decide whether the
/// pipeline may continue. This mirrors the recoverable-error discipline of
/// production compilers without using exceptions.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_DIAGNOSTICS_H
#define USUBA_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace usuba {

enum class DiagSeverity { Note, Warning, Error };

/// One reported diagnostic: severity, position and rendered message.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  SourceLoc Loc;
  std::string Message;

  /// Renders "error: 3:14: message" in the style used by the CLI driver.
  std::string str() const;
};

/// Collects diagnostics emitted during a compilation. The engine is passed
/// by reference through the pipeline; it never aborts the process.
class DiagnosticEngine {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({DiagSeverity::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders every diagnostic, one per line (used by tests and the CLI).
  std::string str() const;

  /// Drops all collected diagnostics, e.g. between independent compiles.
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace usuba

#endif // USUBA_SUPPORT_DIAGNOSTICS_H
