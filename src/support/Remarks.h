//===- Remarks.h - Structured optimization remarks --------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style structured optimization remarks: every pass decision the
/// compiler makes (inline accepted/refused and why, the interleave
/// factor chosen, scheduler window hits and misses, a table lowered to
/// a circuit of N gates, a budget trip) is recorded as a Remark with a
/// pass name, a source location and key/value arguments, so a perf or
/// constant-time finding can always be traced back to a line of `.ua`
/// source and the decision that produced it.
///
/// Overhead contract: identical to Telemetry — disabled by default, and
/// a disabled probe costs one relaxed atomic load. Call sites must gate
/// on remarksEnabled() *before* building any remark (the Remark fluent
/// API allocates strings); the pattern is
///
///   if (remarksEnabled())
///     RemarkEngine::instance().record(
///         Remark::missed("inline", "Budget").at(Loc).note("..."));
///
/// Sinks:
///  * Remark::render()          — one human-readable line (usubac -Rpass);
///  * RemarkEngine::json()      — structured JSON array (--remarks=out.json,
///    embedded in BENCH_throughput.json and CipherStats);
///  * CompiledKernel::Remarks   — the per-compile slice, captured by the
///    compiler via snapshotSince().
///
/// Enabling: RemarkEngine::instance().setEnabled(true), or the
/// environment (USUBA_REMARKS=1).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_REMARKS_H
#define USUBA_SUPPORT_REMARKS_H

#include "support/SourceLoc.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace usuba {

namespace remarks_detail {
/// The global gate. Out of class so the inline fast path needs no
/// function call into RemarkEngine.
extern std::atomic<bool> Enabled;
} // namespace remarks_detail

/// The disabled-path check every probe starts with: one relaxed load.
inline bool remarksEnabled() {
  return remarks_detail::Enabled.load(std::memory_order_relaxed);
}

/// One structured remark: a pass decision with a reason. Mirrors LLVM's
/// OptimizationRemark / OptimizationRemarkMissed / OptimizationRemarkAnalysis
/// taxonomy:
///  * Passed   — a transformation was applied ("inlined 3 calls");
///  * Missed   — a transformation was refused, with the reason
///               ("projected size exceeds the instruction budget");
///  * Analysis — a measurement that explains behavior without implying a
///               decision either way ("scheduler window hits/misses").
struct Remark {
  enum class Kind : uint8_t { Passed, Missed, Analysis };

  /// One key/value argument. Numbers render unquoted in JSON.
  struct Arg {
    std::string Key;
    std::string Value;
    bool IsNumber = false;
  };

  Kind K = Kind::Analysis;
  std::string Pass;     ///< Pass name ("inline", "schedule-bitslice", ...).
  std::string Name;     ///< Remark identifier within the pass.
  std::string Function; ///< Usuba node the remark is about (may be empty).
  SourceLoc Loc;        ///< `.ua` source position (may be invalid).
  std::string Message;  ///< Human-readable reason.
  std::vector<Arg> Args;

  static Remark passed(std::string Pass, std::string Name) {
    return make(Kind::Passed, std::move(Pass), std::move(Name));
  }
  static Remark missed(std::string Pass, std::string Name) {
    return make(Kind::Missed, std::move(Pass), std::move(Name));
  }
  static Remark analysis(std::string Pass, std::string Name) {
    return make(Kind::Analysis, std::move(Pass), std::move(Name));
  }

  Remark &in(std::string Fn) {
    Function = std::move(Fn);
    return *this;
  }
  Remark &at(SourceLoc L) {
    Loc = L;
    return *this;
  }
  Remark &note(std::string Msg) {
    Message = std::move(Msg);
    return *this;
  }
  Remark &arg(std::string Key, std::string Value) {
    Args.push_back({std::move(Key), std::move(Value), false});
    return *this;
  }
  Remark &arg(std::string Key, const char *Value) {
    Args.push_back({std::move(Key), Value, false});
    return *this;
  }
  template <typename T,
            typename std::enable_if<std::is_integral<T>::value, int>::type = 0>
  Remark &arg(std::string Key, T Value) {
    Args.push_back({std::move(Key), std::to_string(Value), true});
    return *this;
  }
  Remark &arg(std::string Key, double Value);

  /// "12:3: remark [inline] missed Budget (rectangle): reason {k=v, ...}"
  std::string render() const;

  /// One JSON object; numbers (including line/col) are unquoted.
  std::string json() const;

private:
  static Remark make(Kind K, std::string Pass, std::string Name);
};

/// "passed" / "missed" / "analysis".
const char *remarkKindName(Remark::Kind K);

/// The process-wide remark buffer. All methods are thread-safe; the
/// enabled hot-path cost is one mutex acquisition per record().
class RemarkEngine {
public:
  /// Buffer capacity: recording stops (and dropped() counts) once full,
  /// bounding memory on pathological compiles.
  static constexpr size_t MaxRemarks = size_t{1} << 16;

  static RemarkEngine &instance();

  bool enabled() const { return remarksEnabled(); }
  void setEnabled(bool On);

  /// Appends one remark (dropped silently past MaxRemarks).
  void record(Remark R);

  /// Number of remarks currently buffered. A caller that wants only its
  /// own compile's remarks captures size() before and snapshotSince()
  /// after.
  size_t size() const;
  size_t dropped() const;

  /// Copies the remarks recorded at index \p Begin and later.
  std::vector<Remark> snapshotSince(size_t Begin) const;
  std::vector<Remark> snapshot() const { return snapshotSince(0); }

  /// Drops every buffered remark (tests, per-run isolation). The
  /// enabled flag is unchanged.
  void reset();

  /// JSON array of every buffered remark.
  std::string json() const;

  /// JSON array of an externally held remark slice (CipherStats).
  static std::string jsonArray(const std::vector<Remark> &Remarks);

private:
  RemarkEngine() = default;

  mutable std::mutex M;
  std::vector<Remark> Buffer;
  size_t Dropped = 0;
};

} // namespace usuba

#endif // USUBA_SUPPORT_REMARKS_H
