//===- Diagnostics.cpp - Error reporting for the Usubac pipeline ----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace usuba;

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Fatal:
    return "fatal";
  }
  return "error";
}

std::string Diagnostic::str() const {
  std::string Out = severityName(Severity);
  Out += ": ";
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string InternalCompilerError::str() const {
  std::string Out = "internal compiler error: ";
  Out += Message;
  Out += " [";
  Out += File;
  Out += ":";
  Out += std::to_string(Line);
  Out += "]";
  return Out;
}

void usuba::reportInternalError(const char *File, unsigned Line,
                                std::string Message) {
  throw InternalCompilerError{File, Line, std::move(Message)};
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  ++NumErrors;
  if (ErrorLimit && NumErrors > ErrorLimit) {
    if (!Saturated) {
      Saturated = true;
      Diags.push_back({DiagSeverity::Error, Loc,
                       "too many errors (" + std::to_string(ErrorLimit) +
                           "), further errors suppressed"});
    }
    return;
  }
  Diags.push_back({DiagSeverity::Error, Loc, std::move(Message)});
}

void DiagnosticEngine::fatal(SourceLoc Loc, std::string Message) {
  // Fatal diagnostics mark compiler bugs; never suppress them.
  ++NumErrors;
  ++NumFatals;
  Diags.push_back({DiagSeverity::Fatal, Loc, std::move(Message)});
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
