//===- Diagnostics.cpp - Error reporting for the Usubac pipeline ----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace usuba;

static const char *severityName(DiagSeverity Severity) {
  switch (Severity) {
  case DiagSeverity::Note:
    return "note";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  }
  return "error";
}

std::string Diagnostic::str() const {
  std::string Out = severityName(Severity);
  Out += ": ";
  if (Loc.isValid()) {
    Out += Loc.str();
    Out += ": ";
  }
  Out += Message;
  return Out;
}

std::string DiagnosticEngine::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}
