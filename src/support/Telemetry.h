//===- Telemetry.h - Counters, spans and trace events -----------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead, process-wide telemetry registry for the whole stack:
/// the compiler passes, the transposition runtime, the threaded engine
/// and the kernel cache all report through it, and the benches embed its
/// snapshot so a throughput number is always accompanied by *where* the
/// cycles went (pack/unpack vs kernel vs threading overhead).
///
/// Overhead contract: telemetry is disabled by default, and a disabled
/// probe costs one relaxed atomic load (the counters, maps and the
/// event ring are untouched). The contract is enforced by
/// TelemetryTest.DisabledProbeIsCheap and the "zero observable
/// counters" test; the enabled path takes a mutex and is a profiling
/// mode, not a production default.
///
/// Three sinks:
///  * snapshotJson()  — structured JSON of every counter and span
///    aggregate (embedded in BENCH_throughput.json by the bench);
///  * writeTrace()    — a chrome://tracing / Perfetto "trace events"
///    file of the recorded spans;
///  * summary()       — a human-readable table for terminals.
///
/// Enabling: Telemetry::instance().setEnabled(true), or the environment
/// (USUBA_TELEMETRY=1). USUBA_TRACE_FILE=path additionally dumps the
/// trace at process exit.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_TELEMETRY_H
#define USUBA_SUPPORT_TELEMETRY_H

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace usuba {

namespace telemetry_detail {
/// The global gate. Out of class so the inline fast path needs no
/// function call into Telemetry.
extern std::atomic<bool> Enabled;

/// Monotonic nanoseconds (steady_clock).
uint64_t nowNanos();

/// A small dense id for the calling thread (0 for the first thread to
/// ask, 1 for the next, ...) — the "tid" of trace events.
uint32_t threadTag();
} // namespace telemetry_detail

/// The disabled-path check every probe starts with: one relaxed load.
inline bool telemetryEnabled() {
  return telemetry_detail::Enabled.load(std::memory_order_relaxed);
}

/// Serialized cycle counter for attribution counters (falls back to
/// nanoseconds off x86 — the *ratios* between pack/kernel/unpack are
/// what matters, and both units are monotonic).
inline uint64_t telemetryCycles() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return telemetry_detail::nowNanos();
#endif
}

/// The process-wide registry. All methods are thread-safe; the enabled
/// hot-path cost is one mutex acquisition per probe.
class Telemetry {
public:
  /// Trace-event ring capacity: recording stops (and
  /// telemetry.dropped_events counts) once full, bounding memory on
  /// long profiled runs.
  static constexpr size_t MaxTraceEvents = size_t{1} << 16;

  static Telemetry &instance();

  bool enabled() const { return telemetryEnabled(); }
  void setEnabled(bool On);

  /// Adds \p Delta to the named monotonic counter.
  void count(const std::string &Name, uint64_t Delta = 1);

  /// Records one completed span: aggregates into (calls, total_ns) under
  /// \p Name and appends a trace event (until the ring is full).
  void span(const std::string &Name, uint64_t StartNs, uint64_t DurNs,
            uint32_t Tid);

  /// Aggregate of every span recorded under one name.
  struct SpanStat {
    uint64_t Calls = 0;
    uint64_t TotalNs = 0;
  };

  /// Observability for tests: current counter value (0 when absent),
  /// span aggregate, and how many counters / events exist at all.
  uint64_t counter(const std::string &Name) const;
  SpanStat spanStat(const std::string &Name) const;
  size_t counterCount() const;
  size_t eventCount() const;

  /// Drops every counter, span aggregate and trace event (tests and
  /// per-run bench isolation). The enabled flag is unchanged.
  void reset();

  /// Sink 1: structured JSON snapshot of counters and span aggregates.
  std::string snapshotJson() const;

  /// Sink 2: chrome://tracing "trace events" JSON. Returns false when
  /// the file cannot be written.
  bool writeTrace(const std::string &Path) const;

  /// Sink 3: a human-readable summary table.
  std::string summary() const;

private:
  Telemetry() = default;

  struct Event {
    std::string Name;
    uint64_t StartNs;
    uint64_t DurNs;
    uint32_t Tid;
  };

  mutable std::mutex M;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, SpanStat> Spans;
  std::vector<Event> Events;
  uint64_t DroppedEvents = 0;
};

/// Counter probe: no-op (one relaxed load) when telemetry is disabled.
inline void telemetryCount(const char *Name, uint64_t Delta = 1) {
  if (telemetryEnabled())
    Telemetry::instance().count(Name, Delta);
}

/// RAII span probe: captures the start time at construction and records
/// the span at destruction. Decides enabled-ness once, at construction
/// (a span straddling an enable/disable flip is attributed to its start
/// state).
class TelemetrySpan {
public:
  explicit TelemetrySpan(const char *Name)
      : Name(telemetryEnabled() ? Name : nullptr),
        StartNs(this->Name ? telemetry_detail::nowNanos() : 0) {}
  ~TelemetrySpan() {
    if (Name)
      Telemetry::instance().span(Name, StartNs,
                                 telemetry_detail::nowNanos() - StartNs,
                                 telemetry_detail::threadTag());
  }
  TelemetrySpan(const TelemetrySpan &) = delete;
  TelemetrySpan &operator=(const TelemetrySpan &) = delete;

private:
  const char *Name;
  uint64_t StartNs;
};

} // namespace usuba

#endif // USUBA_SUPPORT_TELEMETRY_H
