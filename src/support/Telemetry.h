//===- Telemetry.h - Counters, spans, histograms and trace events -*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead, process-wide telemetry registry for the whole stack:
/// the compiler passes, the transposition runtime, the threaded engine,
/// the kernel cache and the CipherService all report through it, and the
/// benches embed its snapshot so a throughput number is always
/// accompanied by *where* the cycles went (pack/unpack vs kernel vs
/// threading overhead vs queueing).
///
/// Overhead contract (enforced by TelemetryTest.DisabledProbeIsCheap and
/// TelemetryTest.EnabledProbeIsCheap):
///  * disabled probe — one relaxed atomic load; counters, maps and the
///    event ring are untouched;
///  * enabled counter/span probe — lock-free: a thread-local name-cache
///    hit resolves to a sharded cache-line-private atomic cell
///    (NumShards cells per name, indexed by thread tag) and one or two
///    relaxed fetch_adds; spans additionally write one slot of the
///    lock-free circular trace ring. The registry mutex is touched only
///    the first time a thread meets a new name (or after reset()), never
///    per-probe — cheap enough to leave ON in a serving process.
///
/// Aggregation happens at snapshot time: sinks sum the shard cells under
/// the registry mutex. Histograms (see Histogram.h) and gauges are
/// registered once via histogramRef()/gaugeRef() and recorded into
/// directly — the returned references stay valid for the process
/// lifetime, across reset().
///
/// Five sinks:
///  * snapshotJson()  — structured JSON of counters, spans, histogram
///    percentiles and gauges (embedded in BENCH_*.json by the benches);
///    includes "cycle_unit" naming the unit of telemetryCycles()-based
///    attribution counters ("rdtsc" on x86-64, "ns" elsewhere) so
///    consumers never compare across units;
///  * writeTrace()    — a chrome://tracing / Perfetto "trace events"
///    file of the recorded spans and annotated events;
///  * summary()       — a human-readable table for terminals;
///  * exportMetrics() — Prometheus text exposition format (counters as
///    *_total, histograms as summaries with quantile labels, gauges);
///  * statsDump()     — a human operations table: every counter, gauge,
///    span aggregate and histogram with p50/p90/p99/p99.9.
///
/// The trace ring is circular: it keeps the most recent MaxTraceEvents
/// spans, overwriting the oldest, and reports how many were overwritten
/// as dropped_events. event() records a rare-path *annotated* event
/// (name + args JSON, e.g. a slow-request stage breakdown) into a small
/// bounded side buffer included in writeTrace().
///
/// Enabling: Telemetry::instance().setEnabled(true), or the environment
/// (USUBA_TELEMETRY=1). USUBA_TRACE_FILE=path additionally dumps the
/// trace at process exit.
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_SUPPORT_TELEMETRY_H
#define USUBA_SUPPORT_TELEMETRY_H

#include "support/Histogram.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace usuba {

namespace telemetry_detail {
/// The global gate. Out of class so the inline fast path needs no
/// function call into Telemetry.
extern std::atomic<bool> Enabled;

/// Monotonic nanoseconds (steady_clock).
uint64_t nowNanos();

/// A small dense id for the calling thread (0 for the first thread to
/// ask, 1 for the next, ...) — the "tid" of trace events and the shard
/// selector for counter cells.
uint32_t threadTag();
} // namespace telemetry_detail

/// The disabled-path check every probe starts with: one relaxed load.
inline bool telemetryEnabled() {
  return telemetry_detail::Enabled.load(std::memory_order_relaxed);
}

/// Serialized cycle counter for attribution counters (falls back to
/// nanoseconds off x86 — the *ratios* between pack/kernel/unpack are
/// what matters, and both units are monotonic). The active unit is
/// telemetryCycleUnit() and is recorded in snapshotJson().
inline uint64_t telemetryCycles() {
#if defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return telemetry_detail::nowNanos();
#endif
}

/// Unit of telemetryCycles() on this build: "rdtsc" or "ns".
inline const char *telemetryCycleUnit() {
#if defined(__x86_64__)
  return "rdtsc";
#else
  return "ns";
#endif
}

/// The process-wide registry. All methods are thread-safe; see the file
/// comment for the per-probe cost contract.
class Telemetry {
public:
  /// Trace-event ring capacity. The ring is circular: it retains the
  /// most recent MaxTraceEvents spans and counts overwritten ones as
  /// dropped_events, bounding memory on long profiled runs without
  /// losing the interesting (recent) end of the timeline.
  static constexpr size_t MaxTraceEvents = size_t{1} << 16;

  /// Shard count for counter/span cells: probes from different threads
  /// land on different cache lines (threadTag() % NumShards).
  static constexpr unsigned NumShards = 16;

  static Telemetry &instance();

  bool enabled() const { return telemetryEnabled(); }
  void setEnabled(bool On);

  /// Adds \p Delta to the named monotonic counter. The const char*
  /// overload is the hot path: the pointer identity is used as a
  /// thread-local cache key (verified by strcmp), so string literals
  /// resolve to their sharded cell without hashing or locking.
  void count(const char *Name, uint64_t Delta = 1);
  void count(const std::string &Name, uint64_t Delta = 1);

  /// Records one completed span: aggregates into (calls, total_ns) under
  /// \p Name and appends a trace event to the circular ring.
  void span(const char *Name, uint64_t StartNs, uint64_t DurNs, uint32_t Tid);
  void span(const std::string &Name, uint64_t StartNs, uint64_t DurNs,
            uint32_t Tid);

  /// Records a rare-path annotated trace event (e.g. a slow-request
  /// stage breakdown). \p ArgsJson must be a JSON object literal
  /// ("{...}"); it becomes the event's "args" in writeTrace(). Bounded:
  /// the oldest annotated events are dropped past MaxAnnotatedEvents.
  /// Takes the registry mutex — keep off per-request hot paths.
  void event(const std::string &Name, uint64_t StartNs, uint64_t DurNs,
             uint32_t Tid, const std::string &ArgsJson);
  static constexpr size_t MaxAnnotatedEvents = 1024;

  /// Returns the process-lifetime histogram / gauge registered under
  /// \p Name, creating it on first use (registry mutex; cache the
  /// reference). record()/set() on the result are lock-free. reset()
  /// zeroes the cells but never invalidates the references.
  Histogram &histogramRef(const std::string &Name);
  Gauge &gaugeRef(const std::string &Name);

  /// Aggregate of every span recorded under one name.
  struct SpanStat {
    uint64_t Calls = 0;
    uint64_t TotalNs = 0;
  };

  /// Observability for tests: current counter value (0 when absent),
  /// span aggregate, and how many counters / events exist at all.
  uint64_t counter(const std::string &Name) const;
  SpanStat spanStat(const std::string &Name) const;
  size_t counterCount() const;
  size_t eventCount() const;
  /// Spans overwritten in the circular ring since the last reset().
  uint64_t droppedEvents() const;

  /// Drops every counter, span aggregate and trace event and zeroes all
  /// histograms and gauges (tests and per-run bench isolation). The
  /// enabled flag is unchanged. Safe against concurrent probes: retired
  /// counter/span cells are kept alive (never freed) so an in-flight
  /// recording can at worst be lost, never fault.
  void reset();

  /// Sink 1: structured JSON snapshot of counters, spans, histograms
  /// and gauges, plus "cycle_unit".
  std::string snapshotJson() const;

  /// Sink 2: chrome://tracing "trace events" JSON (ring spans in record
  /// order plus annotated events with args). Returns false when the
  /// file cannot be written.
  bool writeTrace(const std::string &Path) const;

  /// Sink 3: a human-readable summary table.
  std::string summary() const;

  /// Sink 4: Prometheus text exposition (one metric per counter /
  /// gauge; histograms as summaries; spans as *_calls_total and
  /// *_ns_total). Names are sanitized to [a-zA-Z0-9_] and prefixed
  /// "usuba_".
  std::string exportMetrics() const;

  /// Sink 5: a human operations table — counters, gauges, spans and
  /// histogram percentiles in one dump.
  std::string statsDump() const;

private:
  Telemetry();
  struct Impl;
  Impl *I; // leaked with the singleton: probes may run during exit

  struct CounterEntry;
  struct SpanEntry;
  CounterEntry *counterEntrySlow(const char *Name);
  SpanEntry *spanEntrySlow(const char *Name);
};

/// Counter probe: no-op (one relaxed load) when telemetry is disabled.
inline void telemetryCount(const char *Name, uint64_t Delta = 1) {
  if (telemetryEnabled())
    Telemetry::instance().count(Name, Delta);
}

/// RAII span probe: captures the start time at construction and records
/// the span at destruction. Decides enabled-ness once, at construction
/// (a span straddling an enable/disable flip is attributed to its start
/// state).
class TelemetrySpan {
public:
  explicit TelemetrySpan(const char *Name)
      : Name(telemetryEnabled() ? Name : nullptr),
        StartNs(this->Name ? telemetry_detail::nowNanos() : 0) {}
  ~TelemetrySpan() {
    if (Name)
      Telemetry::instance().span(Name, StartNs,
                                 telemetry_detail::nowNanos() - StartNs,
                                 telemetry_detail::threadTag());
  }
  TelemetrySpan(const TelemetrySpan &) = delete;
  TelemetrySpan &operator=(const TelemetrySpan &) = delete;

private:
  const char *Name;
  uint64_t StartNs;
};

} // namespace usuba

#endif // USUBA_SUPPORT_TELEMETRY_H
