//===- Telemetry.cpp - Counters, spans and trace events -------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace usuba;

namespace usuba {
namespace telemetry_detail {

std::atomic<bool> Enabled{[] {
  const char *Env = std::getenv("USUBA_TELEMETRY");
  return Env && Env[0] == '1';
}()};

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t threadTag() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Tag = Next.fetch_add(1, std::memory_order_relaxed);
  return Tag;
}

} // namespace telemetry_detail
} // namespace usuba

namespace {

/// JSON string escaping for counter/span names (they are ASCII
/// identifiers in practice, but the sink must never emit broken JSON).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Registered once, the first time telemetry is constructed with
/// USUBA_TRACE_FILE set: dumps the trace on normal process exit so CLI
/// tools and benches need no explicit sink call.
void writeTraceAtExit() {
  if (const char *Path = std::getenv("USUBA_TRACE_FILE"))
    usuba::Telemetry::instance().writeTrace(Path);
}

} // namespace

Telemetry &Telemetry::instance() {
  static Telemetry *T = [] {
    auto *Instance = new Telemetry; // leaked: probes may run during exit
    if (std::getenv("USUBA_TRACE_FILE"))
      std::atexit(writeTraceAtExit);
    return Instance;
  }();
  return *T;
}

void Telemetry::setEnabled(bool On) {
  telemetry_detail::Enabled.store(On, std::memory_order_relaxed);
}

void Telemetry::count(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(M);
  Counters[Name] += Delta;
}

void Telemetry::span(const std::string &Name, uint64_t StartNs,
                     uint64_t DurNs, uint32_t Tid) {
  std::lock_guard<std::mutex> Lock(M);
  SpanStat &Stat = Spans[Name];
  ++Stat.Calls;
  Stat.TotalNs += DurNs;
  if (Events.size() < MaxTraceEvents)
    Events.push_back({Name, StartNs, DurNs, Tid});
  else
    ++DroppedEvents;
}

uint64_t Telemetry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Counters.find(Name);
  return It == Counters.end() ? 0 : It->second;
}

Telemetry::SpanStat Telemetry::spanStat(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(M);
  auto It = Spans.find(Name);
  return It == Spans.end() ? SpanStat{} : It->second;
}

size_t Telemetry::counterCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Counters.size();
}

size_t Telemetry::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

void Telemetry::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Counters.clear();
  Spans.clear();
  Events.clear();
  DroppedEvents = 0;
}

std::string Telemetry::snapshotJson() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream Out;
  Out << "{\"enabled\": " << (telemetryEnabled() ? "true" : "false")
      << ", \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Counters) {
    Out << (First ? "" : ", ") << '"' << jsonEscape(Name) << "\": " << Value;
    First = false;
  }
  Out << "}, \"spans\": {";
  First = true;
  for (const auto &[Name, Stat] : Spans) {
    Out << (First ? "" : ", ") << '"' << jsonEscape(Name)
        << "\": {\"calls\": " << Stat.Calls
        << ", \"total_ns\": " << Stat.TotalNs << "}";
    First = false;
  }
  Out << "}, \"trace_events\": " << Events.size()
      << ", \"dropped_events\": " << DroppedEvents << "}";
  return Out.str();
}

bool Telemetry::writeTrace(const std::string &Path) const {
  std::lock_guard<std::mutex> Lock(M);
  std::ofstream Out(Path);
  if (!Out)
    return false;
  // Timestamps are microseconds relative to the earliest recorded span,
  // which is what chrome://tracing / Perfetto lay out best.
  uint64_t Epoch = UINT64_MAX;
  for (const Event &E : Events)
    Epoch = std::min(Epoch, E.StartNs);
  if (Epoch == UINT64_MAX)
    Epoch = 0;
  Out << "{\"traceEvents\": [";
  for (size_t I = 0; I < Events.size(); ++I) {
    const Event &E = Events[I];
    char Buf[64];
    Out << (I ? ",\n  " : "\n  ") << "{\"name\": \"" << jsonEscape(E.Name)
        << "\", \"cat\": \"usuba\", \"ph\": \"X\"";
    std::snprintf(Buf, sizeof(Buf), ", \"ts\": %.3f, \"dur\": %.3f",
                  static_cast<double>(E.StartNs - Epoch) / 1000.0,
                  static_cast<double>(E.DurNs) / 1000.0);
    Out << Buf << ", \"pid\": 1, \"tid\": " << E.Tid << "}";
  }
  Out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  Out.flush();
  return static_cast<bool>(Out);
}

std::string Telemetry::summary() const {
  std::lock_guard<std::mutex> Lock(M);
  std::ostringstream Out;
  Out << "telemetry " << (telemetryEnabled() ? "enabled" : "disabled")
      << ": " << Spans.size() << " span names, " << Counters.size()
      << " counters, " << Events.size() << " trace events";
  if (DroppedEvents)
    Out << " (" << DroppedEvents << " dropped)";
  Out << "\n";
  if (!Spans.empty()) {
    Out << "  spans (name, calls, total ms, avg us):\n";
    for (const auto &[Name, Stat] : Spans) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "    %-32s %8llu %10.3f %10.3f\n",
                    Name.c_str(),
                    static_cast<unsigned long long>(Stat.Calls),
                    static_cast<double>(Stat.TotalNs) / 1e6,
                    Stat.Calls ? static_cast<double>(Stat.TotalNs) /
                                     static_cast<double>(Stat.Calls) / 1e3
                               : 0.0);
      Out << Buf;
    }
  }
  if (!Counters.empty()) {
    Out << "  counters:\n";
    for (const auto &[Name, Value] : Counters) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "    %-32s %12llu\n", Name.c_str(),
                    static_cast<unsigned long long>(Value));
      Out << Buf;
    }
  }
  return Out.str();
}
