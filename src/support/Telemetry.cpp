//===- Telemetry.cpp - Counters, spans, histograms and trace events -------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

using namespace usuba;

namespace usuba {
namespace telemetry_detail {

std::atomic<bool> Enabled{[] {
  const char *Env = std::getenv("USUBA_TELEMETRY");
  return Env && Env[0] == '1';
}()};

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

uint32_t threadTag() {
  static std::atomic<uint32_t> Next{0};
  thread_local uint32_t Tag = Next.fetch_add(1, std::memory_order_relaxed);
  return Tag;
}

/// One cache-line-private counter cell; a probe touches exactly one.
struct alignas(64) ShardCell {
  std::atomic<uint64_t> V{0};
};

/// One slot of the circular span ring. All fields are atomics so
/// concurrent overwrite and read are data-race-free (TSan-clean); the
/// Seq protocol (0 while a writer is mid-slot, Ticket+1 once published)
/// lets readers detect and skip torn slots.
struct RingSlot {
  std::atomic<uint64_t> Seq{0};
  std::atomic<uint64_t> StartNs{0};
  std::atomic<uint64_t> DurNs{0};
  std::atomic<uint32_t> NameId{0};
  std::atomic<uint32_t> Tid{0};
};

struct AnnotatedEvent {
  std::string Name;
  uint64_t StartNs;
  uint64_t DurNs;
  uint32_t Tid;
  std::string ArgsJson;
};

} // namespace telemetry_detail
} // namespace usuba

namespace {

using telemetry_detail::AnnotatedEvent;
using telemetry_detail::RingSlot;
using telemetry_detail::ShardCell;
using telemetry_detail::threadTag;

/// JSON string escaping for counter/span names (they are ASCII
/// identifiers in practice, but the sink must never emit broken JSON).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// Prometheus metric name: [a-zA-Z0-9_] only, "usuba_" prefix (which
/// also guarantees a legal leading character).
std::string promName(const std::string &S) {
  std::string Out = "usuba_";
  Out.reserve(S.size() + 8);
  for (char C : S) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

/// Thread-local direct-mapped cache from name-literal pointer to its
/// registry entry. The pointer is the key (hashing-free); a hit is
/// verified by strcmp against the entry's canonical name so a recycled
/// pointer (e.g. a reused std::string buffer) can never alias a
/// different counter. Epoch mismatches (after Telemetry::reset())
/// invalidate lazily.
struct TlSlot {
  const char *Key = nullptr;
  uint64_t Epoch = 0;
  void *Entry = nullptr;
};
struct TlCache {
  static constexpr size_t Size = 128; // power of two, direct-mapped
  TlSlot Counters[Size];
  TlSlot Spans[Size];
};
thread_local TlCache TlC;

inline size_t tlIndex(const char *P) {
  auto X = reinterpret_cast<uintptr_t>(P);
  X ^= X >> 11;
  return (X >> 3) & (TlCache::Size - 1);
}

/// Registered once, the first time telemetry is constructed with
/// USUBA_TRACE_FILE set: dumps the trace on normal process exit so CLI
/// tools and benches need no explicit sink call.
void writeTraceAtExit() {
  if (const char *Path = std::getenv("USUBA_TRACE_FILE"))
    usuba::Telemetry::instance().writeTrace(Path);
}

} // namespace

struct Telemetry::CounterEntry {
  const char *Canon = nullptr; // interned name (stable storage)
  uint32_t NameId = 0;
  std::array<ShardCell, NumShards> Cells;
  uint64_t total() const {
    uint64_t T = 0;
    for (const ShardCell &C : Cells)
      T += C.V.load(std::memory_order_relaxed);
    return T;
  }
};

struct Telemetry::SpanEntry {
  const char *Canon = nullptr;
  uint32_t NameId = 0;
  std::array<ShardCell, NumShards> Calls;
  std::array<ShardCell, NumShards> Ns;
  SpanStat stat() const {
    SpanStat S;
    for (unsigned I = 0; I < NumShards; ++I) {
      S.Calls += Calls[I].V.load(std::memory_order_relaxed);
      S.TotalNs += Ns[I].V.load(std::memory_order_relaxed);
    }
    return S;
  }
};

struct Telemetry::Impl {
  mutable std::mutex M;

  /// Bumped by reset() (under M) to invalidate thread-local caches.
  std::atomic<uint64_t> Epoch{1};

  /// Interned names. The deque gives stable storage for Canon/c_str
  /// pointers; both structures survive reset() so a NameId recorded in
  /// the ring before a racing reset still resolves to the right name.
  std::deque<std::string> Names;
  std::map<std::string, uint32_t> NameIds;

  std::map<std::string, std::unique_ptr<CounterEntry>> Counters;
  std::map<std::string, std::unique_ptr<SpanEntry>> Spans;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;

  /// Entries retired by reset(). Kept alive (reachable, never freed) so
  /// an in-flight probe holding a cached pointer can at worst record
  /// into a retired cell — never fault.
  std::vector<std::unique_ptr<CounterEntry>> CounterGraveyard;
  std::vector<std::unique_ptr<SpanEntry>> SpanGraveyard;

  std::unique_ptr<RingSlot[]> Ring{new RingSlot[MaxTraceEvents]};
  std::atomic<uint64_t> RingCursor{0};

  std::deque<AnnotatedEvent> Annotated;
  uint64_t AnnotatedDropped = 0;

  uint32_t internLocked(const std::string &Name) {
    auto It = NameIds.find(Name);
    if (It != NameIds.end())
      return It->second;
    auto Id = static_cast<uint32_t>(Names.size());
    Names.push_back(Name);
    NameIds.emplace(Name, Id);
    return Id;
  }

  CounterEntry *counterLocked(const std::string &Name) {
    auto It = Counters.find(Name);
    if (It != Counters.end())
      return It->second.get();
    uint32_t Id = internLocked(Name);
    auto E = std::make_unique<CounterEntry>();
    E->NameId = Id;
    E->Canon = Names[Id].c_str();
    CounterEntry *Raw = E.get();
    Counters.emplace(Name, std::move(E));
    return Raw;
  }

  SpanEntry *spanLocked(const std::string &Name) {
    auto It = Spans.find(Name);
    if (It != Spans.end())
      return It->second.get();
    uint32_t Id = internLocked(Name);
    auto E = std::make_unique<SpanEntry>();
    E->NameId = Id;
    E->Canon = Names[Id].c_str();
    SpanEntry *Raw = E.get();
    Spans.emplace(Name, std::move(E));
    return Raw;
  }

  /// Lock-free circular append (seqlock per slot): invalidate, publish
  /// fields, publish Seq = Ticket + 1.
  void appendRing(uint32_t NameId, uint64_t StartNs, uint64_t DurNs,
                  uint32_t Tid) {
    uint64_t Ticket = RingCursor.fetch_add(1, std::memory_order_relaxed);
    RingSlot &S = Ring[Ticket & (MaxTraceEvents - 1)];
    S.Seq.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    S.StartNs.store(StartNs, std::memory_order_relaxed);
    S.DurNs.store(DurNs, std::memory_order_relaxed);
    S.NameId.store(NameId, std::memory_order_relaxed);
    S.Tid.store(Tid, std::memory_order_relaxed);
    S.Seq.store(Ticket + 1, std::memory_order_release);
  }

  struct RingEvent {
    uint64_t Ticket;
    uint64_t StartNs;
    uint64_t DurNs;
    uint32_t NameId;
    uint32_t Tid;
  };

  /// Seq-validated copy of the ring in record order. Slots a concurrent
  /// writer is mid-way through are skipped, not torn.
  std::vector<RingEvent> collectRing() const {
    std::vector<RingEvent> Out;
    Out.reserve(std::min<uint64_t>(RingCursor.load(std::memory_order_acquire),
                                   MaxTraceEvents));
    for (size_t I = 0; I < MaxTraceEvents; ++I) {
      const RingSlot &S = Ring[I];
      uint64_t S1 = S.Seq.load(std::memory_order_acquire);
      if (!S1)
        continue;
      RingEvent E;
      E.StartNs = S.StartNs.load(std::memory_order_relaxed);
      E.DurNs = S.DurNs.load(std::memory_order_relaxed);
      E.NameId = S.NameId.load(std::memory_order_relaxed);
      E.Tid = S.Tid.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (S.Seq.load(std::memory_order_relaxed) != S1)
        continue;
      E.Ticket = S1 - 1;
      Out.push_back(E);
    }
    std::sort(Out.begin(), Out.end(),
              [](const RingEvent &A, const RingEvent &B) {
                return A.Ticket < B.Ticket;
              });
    return Out;
  }

  uint64_t ringTotal() const {
    return RingCursor.load(std::memory_order_relaxed);
  }
  uint64_t ringRetained() const {
    return std::min<uint64_t>(ringTotal(), MaxTraceEvents);
  }
  uint64_t ringDropped() const {
    uint64_t Total = ringTotal();
    return Total > MaxTraceEvents ? Total - MaxTraceEvents : 0;
  }
};

Telemetry::Telemetry() : I(new Impl) {}

Telemetry &Telemetry::instance() {
  static Telemetry *T = [] {
    auto *Instance = new Telemetry; // leaked: probes may run during exit
    if (std::getenv("USUBA_TRACE_FILE"))
      std::atexit(writeTraceAtExit);
    return Instance;
  }();
  return *T;
}

void Telemetry::setEnabled(bool On) {
  telemetry_detail::Enabled.store(On, std::memory_order_relaxed);
}

Telemetry::CounterEntry *Telemetry::counterEntrySlow(const char *Name) {
  std::lock_guard<std::mutex> Lock(I->M);
  CounterEntry *E = I->counterLocked(Name);
  TlSlot &S = TlC.Counters[tlIndex(Name)];
  S.Key = Name;
  S.Epoch = I->Epoch.load(std::memory_order_relaxed);
  S.Entry = E;
  return E;
}

Telemetry::SpanEntry *Telemetry::spanEntrySlow(const char *Name) {
  std::lock_guard<std::mutex> Lock(I->M);
  SpanEntry *E = I->spanLocked(Name);
  TlSlot &S = TlC.Spans[tlIndex(Name)];
  S.Key = Name;
  S.Epoch = I->Epoch.load(std::memory_order_relaxed);
  S.Entry = E;
  return E;
}

void Telemetry::count(const char *Name, uint64_t Delta) {
  uint64_t Epoch = I->Epoch.load(std::memory_order_acquire);
  TlSlot &S = TlC.Counters[tlIndex(Name)];
  CounterEntry *E;
  if (S.Key == Name && S.Epoch == Epoch &&
      std::strcmp(static_cast<CounterEntry *>(S.Entry)->Canon, Name) == 0)
    E = static_cast<CounterEntry *>(S.Entry);
  else
    E = counterEntrySlow(Name);
  E->Cells[threadTag() % NumShards].V.fetch_add(Delta,
                                                std::memory_order_relaxed);
}

void Telemetry::count(const std::string &Name, uint64_t Delta) {
  std::lock_guard<std::mutex> Lock(I->M);
  I->counterLocked(Name)->Cells[threadTag() % NumShards].V.fetch_add(
      Delta, std::memory_order_relaxed);
}

void Telemetry::span(const char *Name, uint64_t StartNs, uint64_t DurNs,
                     uint32_t Tid) {
  uint64_t Epoch = I->Epoch.load(std::memory_order_acquire);
  TlSlot &S = TlC.Spans[tlIndex(Name)];
  SpanEntry *E;
  if (S.Key == Name && S.Epoch == Epoch &&
      std::strcmp(static_cast<SpanEntry *>(S.Entry)->Canon, Name) == 0)
    E = static_cast<SpanEntry *>(S.Entry);
  else
    E = spanEntrySlow(Name);
  unsigned Sh = threadTag() % NumShards;
  E->Calls[Sh].V.fetch_add(1, std::memory_order_relaxed);
  E->Ns[Sh].V.fetch_add(DurNs, std::memory_order_relaxed);
  I->appendRing(E->NameId, StartNs, DurNs, Tid);
}

void Telemetry::span(const std::string &Name, uint64_t StartNs, uint64_t DurNs,
                     uint32_t Tid) {
  uint32_t NameId;
  {
    std::lock_guard<std::mutex> Lock(I->M);
    SpanEntry *E = I->spanLocked(Name);
    unsigned Sh = threadTag() % NumShards;
    E->Calls[Sh].V.fetch_add(1, std::memory_order_relaxed);
    E->Ns[Sh].V.fetch_add(DurNs, std::memory_order_relaxed);
    NameId = E->NameId;
  }
  I->appendRing(NameId, StartNs, DurNs, Tid);
}

void Telemetry::event(const std::string &Name, uint64_t StartNs, uint64_t DurNs,
                      uint32_t Tid, const std::string &ArgsJson) {
  std::lock_guard<std::mutex> Lock(I->M);
  I->Annotated.push_back({Name, StartNs, DurNs, Tid, ArgsJson});
  if (I->Annotated.size() > MaxAnnotatedEvents) {
    I->Annotated.pop_front();
    ++I->AnnotatedDropped;
  }
}

Histogram &Telemetry::histogramRef(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(I->M);
  auto It = I->Histograms.find(Name);
  if (It == I->Histograms.end())
    It = I->Histograms.emplace(Name, std::make_unique<Histogram>()).first;
  return *It->second;
}

Gauge &Telemetry::gaugeRef(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(I->M);
  auto It = I->Gauges.find(Name);
  if (It == I->Gauges.end())
    It = I->Gauges.emplace(Name, std::make_unique<Gauge>()).first;
  return *It->second;
}

uint64_t Telemetry::counter(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(I->M);
  auto It = I->Counters.find(Name);
  return It == I->Counters.end() ? 0 : It->second->total();
}

Telemetry::SpanStat Telemetry::spanStat(const std::string &Name) const {
  std::lock_guard<std::mutex> Lock(I->M);
  auto It = I->Spans.find(Name);
  return It == I->Spans.end() ? SpanStat{} : It->second->stat();
}

size_t Telemetry::counterCount() const {
  std::lock_guard<std::mutex> Lock(I->M);
  return I->Counters.size();
}

size_t Telemetry::eventCount() const {
  return static_cast<size_t>(I->ringRetained());
}

uint64_t Telemetry::droppedEvents() const { return I->ringDropped(); }

void Telemetry::reset() {
  std::lock_guard<std::mutex> Lock(I->M);
  for (auto &[Name, E] : I->Counters)
    I->CounterGraveyard.push_back(std::move(E));
  I->Counters.clear();
  for (auto &[Name, E] : I->Spans)
    I->SpanGraveyard.push_back(std::move(E));
  I->Spans.clear();
  for (auto &[Name, H] : I->Histograms)
    H->reset();
  for (auto &[Name, G] : I->Gauges)
    G->set(0);
  I->RingCursor.store(0, std::memory_order_relaxed);
  for (size_t K = 0; K < MaxTraceEvents; ++K)
    I->Ring[K].Seq.store(0, std::memory_order_relaxed);
  I->Annotated.clear();
  I->AnnotatedDropped = 0;
  I->Epoch.fetch_add(1, std::memory_order_release);
}

std::string Telemetry::snapshotJson() const {
  std::lock_guard<std::mutex> Lock(I->M);
  std::ostringstream Out;
  Out << "{\"enabled\": " << (telemetryEnabled() ? "true" : "false")
      << ", \"cycle_unit\": \"" << telemetryCycleUnit() << "\""
      << ", \"counters\": {";
  bool First = true;
  for (const auto &[Name, E] : I->Counters) {
    Out << (First ? "" : ", ") << '"' << jsonEscape(Name)
        << "\": " << E->total();
    First = false;
  }
  Out << "}, \"spans\": {";
  First = true;
  for (const auto &[Name, E] : I->Spans) {
    SpanStat Stat = E->stat();
    Out << (First ? "" : ", ") << '"' << jsonEscape(Name)
        << "\": {\"calls\": " << Stat.Calls
        << ", \"total_ns\": " << Stat.TotalNs << "}";
    First = false;
  }
  Out << "}, \"histograms\": {";
  First = true;
  for (const auto &[Name, H] : I->Histograms) {
    Histogram::Snapshot S = H->snapshot();
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.3f", S.mean());
    Out << (First ? "" : ", ") << '"' << jsonEscape(Name)
        << "\": {\"count\": " << S.Count << ", \"sum\": " << S.Sum
        << ", \"mean\": " << Buf << ", \"p50\": " << S.percentile(0.50)
        << ", \"p90\": " << S.percentile(0.90)
        << ", \"p99\": " << S.percentile(0.99)
        << ", \"p999\": " << S.percentile(0.999) << "}";
    First = false;
  }
  Out << "}, \"gauges\": {";
  First = true;
  for (const auto &[Name, G] : I->Gauges) {
    Out << (First ? "" : ", ") << '"' << jsonEscape(Name)
        << "\": " << G->value();
    First = false;
  }
  Out << "}, \"trace_events\": " << I->ringRetained()
      << ", \"dropped_events\": " << I->ringDropped() << "}";
  return Out.str();
}

bool Telemetry::writeTrace(const std::string &Path) const {
  std::lock_guard<std::mutex> Lock(I->M);
  std::ofstream Out(Path);
  if (!Out)
    return false;
  std::vector<Impl::RingEvent> Events = I->collectRing();
  // Timestamps are microseconds relative to the earliest recorded span,
  // which is what chrome://tracing / Perfetto lay out best.
  uint64_t Epoch = UINT64_MAX;
  for (const Impl::RingEvent &E : Events)
    Epoch = std::min(Epoch, E.StartNs);
  for (const AnnotatedEvent &E : I->Annotated)
    Epoch = std::min(Epoch, E.StartNs);
  if (Epoch == UINT64_MAX)
    Epoch = 0;
  Out << "{\"traceEvents\": [";
  bool First = true;
  auto emitCommon = [&](const std::string &Name, uint64_t StartNs,
                        uint64_t DurNs, uint32_t Tid) {
    char Buf[64];
    Out << (First ? "\n  " : ",\n  ") << "{\"name\": \"" << jsonEscape(Name)
        << "\", \"cat\": \"usuba\", \"ph\": \"X\"";
    std::snprintf(Buf, sizeof(Buf), ", \"ts\": %.3f, \"dur\": %.3f",
                  static_cast<double>(StartNs - Epoch) / 1000.0,
                  static_cast<double>(DurNs) / 1000.0);
    Out << Buf << ", \"pid\": 1, \"tid\": " << Tid;
    First = false;
  };
  for (const Impl::RingEvent &E : Events) {
    const std::string &Name = E.NameId < I->Names.size()
                                  ? I->Names[E.NameId]
                                  : std::string("<unknown>");
    emitCommon(Name, E.StartNs, E.DurNs, E.Tid);
    Out << "}";
  }
  for (const AnnotatedEvent &E : I->Annotated) {
    emitCommon(E.Name, E.StartNs, E.DurNs, E.Tid);
    Out << ", \"args\": " << (E.ArgsJson.empty() ? "{}" : E.ArgsJson) << "}";
  }
  Out << "\n], \"displayTimeUnit\": \"ms\"}\n";
  Out.flush();
  return static_cast<bool>(Out);
}

std::string Telemetry::summary() const {
  std::lock_guard<std::mutex> Lock(I->M);
  std::ostringstream Out;
  Out << "telemetry " << (telemetryEnabled() ? "enabled" : "disabled") << ": "
      << I->Spans.size() << " span names, " << I->Counters.size()
      << " counters, " << I->ringRetained() << " trace events";
  if (uint64_t Dropped = I->ringDropped())
    Out << " (telemetry.dropped_events=" << Dropped
        << " oldest overwritten by the ring)";
  Out << "\n";
  if (!I->Spans.empty()) {
    Out << "  spans (name, calls, total ms, avg us):\n";
    for (const auto &[Name, E] : I->Spans) {
      SpanStat Stat = E->stat();
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "    %-32s %8llu %10.3f %10.3f\n",
                    Name.c_str(), static_cast<unsigned long long>(Stat.Calls),
                    static_cast<double>(Stat.TotalNs) / 1e6,
                    Stat.Calls ? static_cast<double>(Stat.TotalNs) /
                                     static_cast<double>(Stat.Calls) / 1e3
                               : 0.0);
      Out << Buf;
    }
  }
  if (!I->Counters.empty()) {
    Out << "  counters:\n";
    for (const auto &[Name, E] : I->Counters) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "    %-32s %12llu\n", Name.c_str(),
                    static_cast<unsigned long long>(E->total()));
      Out << Buf;
    }
  }
  return Out.str();
}

std::string Telemetry::exportMetrics() const {
  std::lock_guard<std::mutex> Lock(I->M);
  std::ostringstream Out;
  for (const auto &[Name, E] : I->Counters) {
    std::string P = promName(Name) + "_total";
    Out << "# TYPE " << P << " counter\n" << P << " " << E->total() << "\n";
  }
  for (const auto &[Name, E] : I->Spans) {
    SpanStat Stat = E->stat();
    std::string P = promName(Name);
    Out << "# TYPE " << P << "_calls_total counter\n"
        << P << "_calls_total " << Stat.Calls << "\n"
        << "# TYPE " << P << "_ns_total counter\n"
        << P << "_ns_total " << Stat.TotalNs << "\n";
  }
  for (const auto &[Name, G] : I->Gauges) {
    std::string P = promName(Name);
    Out << "# TYPE " << P << " gauge\n" << P << " " << G->value() << "\n";
  }
  for (const auto &[Name, H] : I->Histograms) {
    Histogram::Snapshot S = H->snapshot();
    std::string P = promName(Name);
    Out << "# TYPE " << P << " summary\n";
    static const std::pair<const char *, double> Quantiles[] = {
        {"0.5", 0.50}, {"0.9", 0.90}, {"0.99", 0.99}, {"0.999", 0.999}};
    for (const auto &[Label, Q] : Quantiles)
      Out << P << "{quantile=\"" << Label << "\"} " << S.percentile(Q) << "\n";
    Out << P << "_sum " << S.Sum << "\n" << P << "_count " << S.Count << "\n";
  }
  return Out.str();
}

std::string Telemetry::statsDump() const {
  std::lock_guard<std::mutex> Lock(I->M);
  std::ostringstream Out;
  Out << "usuba stats (telemetry "
      << (telemetryEnabled() ? "enabled" : "disabled")
      << ", cycle_unit=" << telemetryCycleUnit() << ")\n";
  if (!I->Counters.empty()) {
    Out << "  counters:\n";
    for (const auto &[Name, E] : I->Counters) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "    %-40s %14llu\n", Name.c_str(),
                    static_cast<unsigned long long>(E->total()));
      Out << Buf;
    }
  }
  if (!I->Gauges.empty()) {
    Out << "  gauges:\n";
    for (const auto &[Name, G] : I->Gauges) {
      char Buf[128];
      std::snprintf(Buf, sizeof(Buf), "    %-40s %14lld\n", Name.c_str(),
                    static_cast<long long>(G->value()));
      Out << Buf;
    }
  }
  if (!I->Spans.empty()) {
    Out << "  spans (calls, total ms, avg us):\n";
    for (const auto &[Name, E] : I->Spans) {
      SpanStat Stat = E->stat();
      char Buf[160];
      std::snprintf(Buf, sizeof(Buf), "    %-40s %10llu %12.3f %12.3f\n",
                    Name.c_str(), static_cast<unsigned long long>(Stat.Calls),
                    static_cast<double>(Stat.TotalNs) / 1e6,
                    Stat.Calls ? static_cast<double>(Stat.TotalNs) /
                                     static_cast<double>(Stat.Calls) / 1e3
                               : 0.0);
      Out << Buf;
    }
  }
  if (!I->Histograms.empty()) {
    Out << "  histograms (count, mean, p50, p90, p99, p99.9):\n";
    for (const auto &[Name, H] : I->Histograms) {
      Histogram::Snapshot S = H->snapshot();
      char Buf[224];
      std::snprintf(Buf, sizeof(Buf),
                    "    %-40s %10llu %12.1f %10llu %10llu %10llu %10llu\n",
                    Name.c_str(), static_cast<unsigned long long>(S.Count),
                    S.mean(),
                    static_cast<unsigned long long>(S.percentile(0.50)),
                    static_cast<unsigned long long>(S.percentile(0.90)),
                    static_cast<unsigned long long>(S.percentile(0.99)),
                    static_cast<unsigned long long>(S.percentile(0.999)));
      Out << Buf;
    }
  }
  Out << "  trace: " << I->ringRetained() << " ring events ("
      << I->ringDropped() << " overwritten), " << I->Annotated.size()
      << " annotated";
  if (I->AnnotatedDropped)
    Out << " (" << I->AnnotatedDropped << " dropped)";
  Out << "\n";
  return Out.str();
}
