//===- Remarks.cpp - Structured optimization remarks ----------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Remarks.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

using namespace usuba;

namespace usuba {
namespace remarks_detail {

std::atomic<bool> Enabled{[] {
  const char *Env = std::getenv("USUBA_REMARKS");
  return Env && Env[0] == '1';
}()};

} // namespace remarks_detail
} // namespace usuba

namespace {

/// JSON string escaping (pass names and messages are ASCII in practice,
/// but the sink must never emit broken JSON).
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

} // namespace

const char *usuba::remarkKindName(Remark::Kind K) {
  switch (K) {
  case Remark::Kind::Passed:
    return "passed";
  case Remark::Kind::Missed:
    return "missed";
  case Remark::Kind::Analysis:
    return "analysis";
  }
  return "analysis";
}

Remark Remark::make(Kind K, std::string Pass, std::string Name) {
  Remark R;
  R.K = K;
  R.Pass = std::move(Pass);
  R.Name = std::move(Name);
  return R;
}

Remark &Remark::arg(std::string Key, double Value) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.3f", Value);
  Args.push_back({std::move(Key), Buf, true});
  return *this;
}

std::string Remark::render() const {
  std::string Out = Loc.str();
  Out += ": remark [";
  Out += Pass;
  Out += "] ";
  Out += remarkKindName(K);
  Out += ' ';
  Out += Name;
  if (!Function.empty()) {
    Out += " (";
    Out += Function;
    Out += ')';
  }
  if (!Message.empty()) {
    Out += ": ";
    Out += Message;
  }
  if (!Args.empty()) {
    Out += " {";
    for (size_t I = 0; I < Args.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Args[I].Key;
      Out += '=';
      Out += Args[I].Value;
    }
    Out += '}';
  }
  return Out;
}

std::string Remark::json() const {
  std::ostringstream Out;
  Out << "{\"kind\": \"" << remarkKindName(K) << "\", \"pass\": \""
      << jsonEscape(Pass) << "\", \"name\": \"" << jsonEscape(Name) << "\"";
  if (!Function.empty())
    Out << ", \"function\": \"" << jsonEscape(Function) << "\"";
  Out << ", \"line\": " << Loc.Line << ", \"col\": " << Loc.Column
      << ", \"message\": \"" << jsonEscape(Message) << "\", \"args\": {";
  for (size_t I = 0; I < Args.size(); ++I) {
    Out << (I ? ", " : "") << '"' << jsonEscape(Args[I].Key) << "\": ";
    if (Args[I].IsNumber)
      Out << Args[I].Value;
    else
      Out << '"' << jsonEscape(Args[I].Value) << '"';
  }
  Out << "}}";
  return Out.str();
}

RemarkEngine &RemarkEngine::instance() {
  static RemarkEngine *E = new RemarkEngine; // leaked: probes may run at exit
  return *E;
}

void RemarkEngine::setEnabled(bool On) {
  remarks_detail::Enabled.store(On, std::memory_order_relaxed);
}

void RemarkEngine::record(Remark R) {
  std::lock_guard<std::mutex> Lock(M);
  if (Buffer.size() < MaxRemarks)
    Buffer.push_back(std::move(R));
  else
    ++Dropped;
}

size_t RemarkEngine::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Buffer.size();
}

size_t RemarkEngine::dropped() const {
  std::lock_guard<std::mutex> Lock(M);
  return Dropped;
}

std::vector<Remark> RemarkEngine::snapshotSince(size_t Begin) const {
  std::lock_guard<std::mutex> Lock(M);
  if (Begin >= Buffer.size())
    return {};
  return std::vector<Remark>(Buffer.begin() + static_cast<long>(Begin),
                             Buffer.end());
}

void RemarkEngine::reset() {
  std::lock_guard<std::mutex> Lock(M);
  Buffer.clear();
  Dropped = 0;
}

std::string RemarkEngine::json() const {
  return jsonArray(snapshot());
}

std::string RemarkEngine::jsonArray(const std::vector<Remark> &Remarks) {
  std::string Out = "[";
  for (size_t I = 0; I < Remarks.size(); ++I) {
    if (I)
      Out += ",\n ";
    Out += Remarks[I].json();
  }
  Out += "]";
  return Out;
}
