//===- fig4_monomorphizations.cpp - Paper Figure 4 ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 4 ("Monomorphizations of Rectangle"): the same
/// polymorphic Rectangle program specialized to bitslicing, vslicing and
/// hslicing on every instruction set, with the cipher cost and the
/// transposition cost reported separately (the figure's stacked bars).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>

using namespace usuba;
using namespace usuba::bench;

int main() {
  std::printf("Figure 4 reproduction: monomorphizations of Rectangle "
              "(cycles/byte; cipher kernel + transposition/runtime)\n\n");
  const std::vector<int> W = {10, 10, 12, 14, 14, 8};
  printRow({"target", "slicing", "cipher", "transp.+mode", "total", "eng"},
           W);

  const ArchKind Targets[] = {ArchKind::GP64, ArchKind::SSE, ArchKind::AVX,
                              ArchKind::AVX2, ArchKind::AVX512};
  const SlicingMode Modes[] = {SlicingMode::Vslice, SlicingMode::Hslice,
                               SlicingMode::Bitslice};

  for (ArchKind T : Targets) {
    const Arch &Target = archFor(T);
    for (SlicingMode Mode : Modes) {
      std::optional<UsubaCipher> Cipher =
          makeCipher(CipherId::Rectangle, Mode, Target);
      if (!Cipher) {
        printRow({Target.Name, slicingName(Mode), "-", "-", "-", "-"}, W);
        continue;
      }
      double Kernel = kernelCyclesPerByte(*Cipher);
      double Full = ctrCyclesPerByte(*Cipher);
      double Transpose = Full > Kernel ? Full - Kernel : 0;
      printRow({Target.Name, slicingName(Mode), fmt(Kernel),
                fmt(Transpose), fmt(Full), engineTag(*Cipher)},
               W);
    }
  }

  std::printf("\nPaper shape: vslicing wins overall (cheap transposition); "
              "hslicing matches vslicing modulo transposition; on GP "
              "64-bit, bitslicing beats vslicing because vsliced GP code "
              "processes one block at a time.\n");
  return 0;
}
