//===- table2_optimal_configs.cpp - Paper Table 2 -------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 2 ("Optimal configurations"): for every cipher and
/// every slicing mode it supports, sweep the Usubac back-end toggles
/// (inlining, unrolling, interleaving, scheduling) and report the
/// combination delivering the highest kernel throughput. The paper also
/// sweeps three C compilers; this machine has one host compiler, so that
/// column reports its name.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>
#include <cstdlib>

using namespace usuba;
using namespace usuba::bench;

namespace {

struct ModeRow {
  CipherId Id;
  SlicingMode Slicing;
  ArchKind Target;
  bool Heavy;
  const char *PaperConfig; ///< Table 2's winning Usubac features
};

const ModeRow Rows[] = {
    {CipherId::Des, SlicingMode::Bitslice, ArchKind::GP64, false,
     "inline+unroll+sched"},
    {CipherId::Aes128, SlicingMode::Bitslice, ArchKind::GP64, true,
     "inline+unroll+sched"},
    {CipherId::Aes128, SlicingMode::Hslice, ArchKind::SSE, false,
     "inline+unroll+sched"},
    {CipherId::Rectangle, SlicingMode::Bitslice, ArchKind::GP64, false,
     "inline+unroll+interleave"},
    {CipherId::Rectangle, SlicingMode::Hslice, ArchKind::AVX2, false,
     "inline+interleave"},
    {CipherId::Rectangle, SlicingMode::Vslice, ArchKind::AVX2, false,
     "inline+interleave"},
    {CipherId::Chacha20, SlicingMode::Vslice, ArchKind::AVX2, false,
     "inline+unroll+sched"},
    {CipherId::Serpent, SlicingMode::Vslice, ArchKind::AVX2, false,
     "inline+interleave"},
};

std::string configName(bool Inline, bool Unroll, bool Interleave,
                       bool Sched) {
  std::string Name;
  if (Inline)
    Name += "inline+";
  if (Unroll)
    Name += "unroll+";
  if (Interleave)
    Name += "interleave+";
  if (Sched)
    Name += "sched+";
  if (Name.empty())
    return "(none)";
  Name.pop_back();
  return Name;
}

} // namespace

int main() {
  std::printf("Table 2 reproduction: optimal Usubac configurations "
              "(kernel-only; one host C compiler, so no compiler "
              "column sweep)\n\n");
  const std::vector<int> W = {11, 10, 8, 30, 10, 28};
  printRow({"cipher", "mode", "target", "best flags (ours)", "c/b",
            "paper's winning flags"},
           W);

  for (const ModeRow &R : Rows) {
    if (R.Heavy && !fullMode()) {
      printRow({cipherName(R.Id), slicingName(R.Slicing),
                archFor(R.Target).Name, "(set USUBA_BENCH_FULL=1)", "-",
                R.PaperConfig},
               W);
      continue;
    }
    double BestCpb = 1e30;
    std::string BestName = "-";
    // Sweep the four toggles; inlining stays on for bitsliced code when
    // sweeping the rest (the paper treats it as a precondition there),
    // and one explicit no-inline configuration is measured.
    for (unsigned Mask = 0; Mask < 16; ++Mask) {
      bool Inline = Mask & 1, Unroll = Mask & 2, Interleave = Mask & 4,
           Sched = Mask & 8;
      if (!Inline && Mask != 0)
        continue; // measure exactly one no-inline variant
      CipherConfig Config;
      Config.Inline = Inline;
      Config.Unroll = Unroll;
      Config.Interleave = Interleave;
      Config.Schedule = Sched;
      std::optional<UsubaCipher> Cipher =
          makeCipher(R.Id, R.Slicing, archFor(R.Target), Config);
      if (!Cipher)
        continue;
      double Cpb = kernelCyclesPerByte(*Cipher);
      if (Cpb < BestCpb) {
        BestCpb = Cpb;
        BestName = configName(Inline, Unroll, Interleave, Sched);
      }
    }
    printRow({cipherName(R.Id), slicingName(R.Slicing),
              archFor(R.Target).Name, BestName, fmt(BestCpb),
              R.PaperConfig},
             W);
  }

  std::printf("\n(As in the paper, no single configuration wins "
              "everywhere; interleaving pays off for the small-register "
              "ciphers, scheduling for the others.)\n");
  return 0;
}
