//===- BenchSupport.h - Shared benchmark harness ----------------*- C++ -*-===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared plumbing for the table/figure reproduction binaries: cycle
/// counting, cipher construction with a JIT-opt-level policy, throughput
/// measurement (end-to-end CTR and kernel-only), and fixed-width table
/// printing that mirrors the paper's rows.
///
/// Environment knobs:
///  * USUBA_BENCH_FULL=1  — include the very large bitsliced-AES
///    configurations (tens of seconds of host-compiler time each);
///  * USUBA_BENCH_BYTES=N — workload size per measurement (default 2 MiB).
///
//===----------------------------------------------------------------------===//

#ifndef USUBA_BENCH_BENCHSUPPORT_H
#define USUBA_BENCH_BENCHSUPPORT_H

#include "ciphers/UsubaCipher.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace usuba {
namespace bench {

/// Serialized timestamp counter (falls back to a monotonic clock off
/// x86).
uint64_t cycles();

/// True when the big bitsliced-AES configurations should run.
bool fullMode();

/// Workload bytes per throughput measurement.
size_t workloadBytes();

/// Runs \p Fn repeatedly (processing \p BytesPerCall each time) until
/// both a minimum time and a minimum byte count are reached; returns the
/// best (minimum) cycles/byte over the trials, the robust estimator for
/// throughput benches.
double measureCyclesPerByte(const std::function<void()> &Fn,
                            size_t BytesPerCall, unsigned Trials = 5);

/// Builds a cipher for benchmarking. Picks the JIT optimization level by
/// kernel size (-O3, degrading to -O0 for the enormous bitsliced-AES
/// kernels so benches stay tractable) by pre-compiling without native
/// code and re-creating. Returns std::nullopt when the slicing does not
/// type-check.
std::optional<UsubaCipher> makeCipher(CipherId Id, SlicingMode Slicing,
                                      const Arch &Target,
                                      const CipherConfig &Overrides = {});

/// End-to-end CTR throughput (includes transposition and the mode
/// driver).
double ctrCyclesPerByte(UsubaCipher &Cipher);

/// Kernel-only throughput (no transposition; what Figures 3/4 report).
double kernelCyclesPerByte(UsubaCipher &Cipher);

/// Transposition-only cost: pack+unpack of one batch, per byte.
double transposeCyclesPerByte(UsubaCipher &Cipher);

/// Latency of one kernel invocation in cycles (Table 3's last column:
/// how long before the first batch of blocks is ready).
double kernelLatencyCycles(UsubaCipher &Cipher);

/// Throughput of the bundled portable reference implementation (the
/// Table 3 baseline; the paper used hand-tuned SUPERCOP code — see the
/// substitution notes in DESIGN.md). ECB for DES/Rectangle, CTR/stream
/// for the others, matching the paper's modes.
double referenceCyclesPerByte(CipherId Id);

/// Source lines of the bundled Usuba program (comment/blank-free), the
/// paper's "code size (SLOC)" column.
unsigned usubaSloc(CipherId Id);

/// "native" or "sim" — printed next to every number so simulator
/// fallbacks are never mistaken for hardware measurements.
const char *engineTag(const UsubaCipher &Cipher);

/// Fixed-width cell printing.
void printRow(const std::vector<std::string> &Cells,
              const std::vector<int> &Widths);

/// Formats a double with \p Decimals digits.
std::string fmt(double Value, int Decimals = 2);

} // namespace bench
} // namespace usuba

#endif // USUBA_BENCH_BENCHSUPPORT_H
