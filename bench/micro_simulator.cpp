//===- micro_simulator.cpp - google-benchmark microbenchmarks -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the substrate itself (google-benchmark): SIMD
/// simulator primitives, the 64x64 bit transpose, BDD synthesis of a DES
/// S-box, and the full compilation pipeline for Rectangle. These bound
/// the costs of the pieces the table/figure benches compose.
///
//===----------------------------------------------------------------------===//

#include "ciphers/UsubaSources.h"
#include "circuits/Circuit.h"
#include "core/Compiler.h"
#include "interp/SimdReg.h"
#include "support/BitUtils.h"

#include <benchmark/benchmark.h>

using namespace usuba;

namespace {

void BM_SimdAddElems(benchmark::State &State) {
  SimdReg A, B, D;
  for (unsigned I = 0; I < 8; ++I) {
    A.Words[I] = 0x0123456789ABCDEFull * (I + 1);
    B.Words[I] = 0xFEDCBA9876543210ull * (I + 3);
  }
  unsigned MBits = static_cast<unsigned>(State.range(0));
  for (auto _ : State) {
    simd::addElems(D, A, B, 8, MBits);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_SimdAddElems)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_SimdRotlElems(benchmark::State &State) {
  SimdReg A, D;
  for (unsigned I = 0; I < 8; ++I)
    A.Words[I] = 0x0123456789ABCDEFull * (I + 1);
  for (auto _ : State) {
    simd::rotlElems(D, A, 7, 8, 32);
    benchmark::DoNotOptimize(D);
  }
}
BENCHMARK(BM_SimdRotlElems);

void BM_Transpose64x64(benchmark::State &State) {
  uint64_t M[64];
  for (unsigned I = 0; I < 64; ++I)
    M[I] = 0x9E3779B97F4A7C15ull * (I + 1);
  for (auto _ : State) {
    transpose64x64(M);
    benchmark::DoNotOptimize(M[0]);
  }
}
BENCHMARK(BM_Transpose64x64);

void BM_SynthesizeDesSbox(benchmark::State &State) {
  TruthTable Table;
  Table.InBits = 6;
  Table.OutBits = 4;
  Table.Entries.resize(64);
  for (unsigned I = 0; I < 64; ++I)
    Table.Entries[I] = (I * 7 + 3) & 0xF;
  for (auto _ : State) {
    Circuit C = synthesizeTable(Table);
    benchmark::DoNotOptimize(C.numGates());
  }
}
BENCHMARK(BM_SynthesizeDesSbox);

void BM_CompileRectangle(benchmark::State &State) {
  for (auto _ : State) {
    CompileOptions Options;
    Options.Direction = Dir::Vert;
    Options.WordBits = 16;
    Options.Target = &archAVX2();
    DiagnosticEngine Diags;
    auto Kernel = compileUsuba(rectangleSource(), Options, Diags);
    benchmark::DoNotOptimize(Kernel->InstrCount);
  }
}
BENCHMARK(BM_CompileRectangle);

} // namespace

BENCHMARK_MAIN();
