//===- throughput_json.cpp - Machine-readable throughput report -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits end-to-end CTR and kernel-only throughput as JSON, one record
/// per (cipher, slicing, arch, engine, threads) — the machine-readable
/// companion to the table benches, consumed by CI's perf-smoke step and
/// checked in as BENCH_throughput.json.
///
/// Usage: throughput_json [--out FILE] [--ciphers a,b,...]
///                        [--archs a,b,...] [--threads n,m,...]
/// Defaults: stdout; every bundled cipher at its best-performing slicing
/// on sse/avx2/avx512; threads {1,2,4,8} (the gate's scaling matrix —
/// rows beyond the host's core count are emitted for completeness and
/// skipped by bench_gate.py's hardware-aware floors, which read the
/// report's host_threads). Rows where the pool engaged carry
/// pool_utilization / steals, and every threads>1 row carries
/// scaling_vs_1t against its threads=1 twin. USUBA_BENCH_BYTES scales
/// the workload (default 2 MiB).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "support/Remarks.h"
#include "support/Telemetry.h"

using namespace usuba;
using namespace usuba::bench;

namespace {

struct Measurement {
  double CyclesPerByte;
  double GibPerSec;
};

/// Runs \p Fn (processing \p BytesPerCall per call) repeatedly, taking
/// the best cycles/byte and the matching wall-clock GiB/s over Trials.
Measurement measureThroughput(const std::function<void()> &Fn,
                              size_t BytesPerCall, unsigned Trials = 3) {
  Measurement Best = {1e300, 0};
  for (unsigned T = 0; T < Trials; ++T) {
    size_t Bytes = 0;
    uint64_t C0 = cycles();
    auto W0 = std::chrono::steady_clock::now();
    // At least three calls and ~20 ms per trial (USUBA_BENCH_BYTES
    // scales the per-call workload).
    while (Bytes < BytesPerCall * 3 ||
           std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         W0)
                   .count() < 0.02) {
      Fn();
      Bytes += BytesPerCall;
    }
    uint64_t C1 = cycles();
    auto W1 = std::chrono::steady_clock::now();
    double Cpb = static_cast<double>(C1 - C0) / static_cast<double>(Bytes);
    double Secs = std::chrono::duration<double>(W1 - W0).count();
    if (Cpb < Best.CyclesPerByte)
      Best = {Cpb, static_cast<double>(Bytes) / Secs / (1024.0 * 1024.0 *
                                                        1024.0)};
  }
  return Best;
}

std::vector<std::string> splitList(const char *Arg) {
  std::vector<std::string> Out;
  std::string Item;
  for (const char *P = Arg;; ++P) {
    if (*P == ',' || *P == '\0') {
      if (!Item.empty())
        Out.push_back(Item);
      Item.clear();
      if (*P == '\0')
        break;
    } else {
      Item += *P;
    }
  }
  return Out;
}

bool contains(const std::vector<std::string> &List, const char *Name) {
  if (List.empty())
    return true;
  for (const std::string &S : List)
    if (S == Name)
      return true;
  return false;
}

/// A JSON array of strings: ["a", "b"]. Empty list = no filter.
std::string jsonStringArray(const std::vector<std::string> &List) {
  std::string Out = "[";
  for (size_t I = 0; I < List.size(); ++I)
    Out += (I ? ", \"" : "\"") + List[I] + "\"";
  return Out + "]";
}

struct ConfigRow {
  CipherId Id;
  SlicingMode Slicing;
};

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = nullptr;
  std::vector<std::string> Ciphers, Archs, ThreadsArg;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--ciphers") && I + 1 < Argc)
      Ciphers = splitList(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--archs") && I + 1 < Argc)
      Archs = splitList(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--threads") && I + 1 < Argc)
      ThreadsArg = splitList(Argv[++I]);
    else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--ciphers a,b] [--archs a,b] "
                   "[--threads n,m]\n",
                   Argv[0]);
      return 2;
    }
  }

  // Each cipher at its best-performing slicing (Table 2's optima).
  const ConfigRow Rows[] = {
      {CipherId::Rectangle, SlicingMode::Vslice},
      {CipherId::Des, SlicingMode::Bitslice},
      {CipherId::Aes128, SlicingMode::Hslice},
      {CipherId::Chacha20, SlicingMode::Vslice},
      {CipherId::Serpent, SlicingMode::Vslice},
      {CipherId::Present, SlicingMode::Bitslice},
  };
  const Arch *Targets[] = {&archSSE(), &archAVX2(), &archAVX512()};

  // The default matrix covers the gate's scaling sweep. Counts beyond the
  // host's cores still measure correctly (the pool over-subscribes by
  // design); bench_gate.py skips its scaling/utilization floors for them
  // based on the host_threads field below.
  std::vector<unsigned> ThreadCounts;
  if (ThreadsArg.empty()) {
    ThreadCounts = {1, 2, 4, 8};
  } else {
    for (const std::string &S : ThreadsArg)
      ThreadCounts.push_back(
          static_cast<unsigned>(std::strtoul(S.c_str(), nullptr, 10)));
  }

  FILE *Out = OutPath ? std::fopen(OutPath, "w") : stdout;
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", OutPath);
    return 1;
  }

  // The filters that produced this report. bench_gate.py uses them to
  // know which baseline rows a partial run (CI's perf-smoke subset) is
  // accountable for; empty arrays mean "no filter" (full coverage).
  // host_threads anchors the gate's hardware-aware floors: rows with
  // threads > host_threads cannot physically scale and are exempt.
  const unsigned HostThreads =
      std::max(1u, std::thread::hardware_concurrency());
  std::fprintf(Out,
               "{\n  \"workload_bytes\": %zu,\n  \"host_threads\": %u,\n"
               "  \"filters\": "
               "{\"ciphers\": %s, \"archs\": %s, \"threads\": %s},\n"
               "  \"results\": [",
               workloadBytes(), HostThreads, jsonStringArray(Ciphers).c_str(),
               jsonStringArray(Archs).c_str(),
               jsonStringArray(ThreadsArg).c_str());
  bool FirstRecord = true;
  std::vector<Remark> AllRemarks;
  for (const ConfigRow &Row : Rows) {
    if (!contains(Ciphers, cipherName(Row.Id)))
      continue;
    for (const Arch *Target : Targets) {
      if (!contains(Archs, Target->Name))
        continue;
      std::optional<UsubaCipher> Cipher =
          makeCipher(Row.Id, Row.Slicing, *Target);
      if (!Cipher)
        continue; // slicing does not type-check on this target
      // Stats (and with USUBA_REMARKS=1 the compile remarks, including
      // the table-circuit gate/depth remarks) are collected exactly once
      // per (cipher, arch) group here — never inside the thread loop —
      // so regenerated baselines stay reviewable.
      CipherStats Stats = Cipher->stats();
      if (remarksEnabled())
        AllRemarks.insert(AllRemarks.end(), Stats.CompileRemarks.begin(),
                          Stats.CompileRemarks.end());

      std::vector<uint8_t> Key(Cipher->keyBytes(), 0x5A);
      Cipher->setKey(Key.data(), Key.size());
      const uint8_t Nonce[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
      // Size the workload so the threaded engine engages for every
      // requested thread count: an explicit setThreadCount() call
      // distributes on batch boundaries, so the call must span well more
      // batches than the largest thread count or the per-row numbers
      // silently measure the single-threaded path.
      unsigned MaxThreads = 1;
      for (unsigned T : ThreadCounts)
        MaxThreads = std::max(MaxThreads, T);
      const size_t BatchBytes =
          size_t{Cipher->blocksPerCall()} * Cipher->blockBytes();
      std::vector<uint8_t> Data(
          std::max(workloadBytes(), size_t{8} * MaxThreads * BatchBytes),
          0x33);
      const size_t BatchesPerCall = (Data.size() + BatchBytes - 1) /
                                    BatchBytes;
      double KernelCpb = kernelCyclesPerByte(*Cipher);

      // The threads=1 row of this (cipher, slicing, arch) group anchors
      // scaling_vs_1t for its threads>1 siblings.
      double Cpb1 = -1.0;
      for (unsigned Threads : ThreadCounts) {
        Cipher->setThreadCount(Threads);
        Measurement Ctr = measureThroughput(
            [&] { Cipher->ctrXor(Data.data(), Data.size(), Nonce, 0); },
            Data.size());
        // One untimed telemetry-on call measures how well the pool's
        // slots were filled: worker busy time over wall * participants.
        // When the pool never engaged (threads = 1 or too few batches)
        // there is no utilization to report and the key is omitted.
        Telemetry &Tel = Telemetry::instance();
        const bool TelWas = Tel.enabled();
        Tel.setEnabled(true);
        const uint64_t Busy0 = Tel.counter("threadpool.worker_busy_ns");
        const uint64_t Slot0 = Tel.counter("threadpool.slot_ns");
        const uint64_t Steal0 = Tel.counter("threadpool.steals");
        Cipher->ctrXor(Data.data(), Data.size(), Nonce, 0);
        const uint64_t BusyNs =
            Tel.counter("threadpool.worker_busy_ns") - Busy0;
        const uint64_t SlotNs = Tel.counter("threadpool.slot_ns") - Slot0;
        const uint64_t Steals = Tel.counter("threadpool.steals") - Steal0;
        Tel.setEnabled(TelWas);
        if (Threads == 1 && Cpb1 < 0)
          Cpb1 = Ctr.CyclesPerByte;
        std::fprintf(
            Out,
            "%s\n    {\"cipher\": \"%s\", \"slicing\": \"%s\", "
            "\"arch\": \"%s\", \"engine\": \"%s\", \"threads\": %u, "
            "\"ctr_cycles_per_byte\": %.4f, \"ctr_gib_per_s\": %.4f, "
            "\"kernel_cycles_per_byte\": %.4f, \"kernel_gates\": %llu, "
            "\"kernel_depth\": %llu, \"batches_per_call\": %zu",
            FirstRecord ? "" : ",", cipherName(Row.Id),
            slicingName(Row.Slicing), Target->Name, engineTag(*Cipher),
            Threads, Ctr.CyclesPerByte, Ctr.GibPerSec, KernelCpb,
            static_cast<unsigned long long>(Stats.KernelGates),
            static_cast<unsigned long long>(Stats.KernelDepth),
            BatchesPerCall);
        if (SlotNs)
          std::fprintf(Out, ", \"pool_utilization\": %.3f, \"steals\": %llu",
                       static_cast<double>(BusyNs) /
                           static_cast<double>(SlotNs),
                       static_cast<unsigned long long>(Steals));
        if (Threads > 1 && Cpb1 > 0 && Ctr.CyclesPerByte > 0)
          std::fprintf(Out, ", \"scaling_vs_1t\": %.3f",
                       Cpb1 / Ctr.CyclesPerByte);
        std::fputc('}', Out);
        FirstRecord = false;
      }
    }
  }
  // The process-wide telemetry snapshot rides along with every report:
  // empty counters when telemetry is off, full cycle attribution
  // (pack/kernel/unpack, threadpool utilization, cache hits) under
  // USUBA_TELEMETRY=1.
  // Compile remarks ride along like the telemetry snapshot: an empty
  // array unless USUBA_REMARKS=1, in which case every remark recorded
  // while the benched kernels compiled is embedded.
  std::fprintf(Out, "\n  ],\n  \"remarks\": %s,\n  \"telemetry\": %s\n}\n",
               RemarkEngine::jsonArray(AllRemarks).c_str(),
               Telemetry::instance().snapshotJson().c_str());
  if (OutPath)
    std::fclose(Out);
  return 0;
}
