//===- BenchSupport.cpp - Shared benchmark harness ------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include "cbackend/NativeJit.h"
#include "ciphers/RefAes.h"
#include "ciphers/RefChacha20.h"
#include "ciphers/RefDes.h"
#include "ciphers/RefPresent.h"
#include "ciphers/RefRectangle.h"
#include "ciphers/RefSerpent.h"
#include "ciphers/UsubaSources.h"
#include "runtime/Dudect.h"

#include <sstream>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <algorithm>
#include <cstring>
#include <vector>

using namespace usuba;
using namespace usuba::bench;

uint64_t usuba::bench::cycles() { return readTimestampCounter(); }

bool usuba::bench::fullMode() {
  const char *Env = std::getenv("USUBA_BENCH_FULL");
  return Env && Env[0] == '1';
}

size_t usuba::bench::workloadBytes() {
  if (const char *Env = std::getenv("USUBA_BENCH_BYTES"))
    return std::strtoull(Env, nullptr, 10);
  return 2u << 20; // 2 MiB
}

double usuba::bench::measureCyclesPerByte(const std::function<void()> &Fn,
                                          size_t BytesPerCall,
                                          unsigned Trials) {
  // Warm up (also powers up wide SIMD units, Section 4.2).
  Fn();
  Fn();
  double Best = 1e30;
  for (unsigned T = 0; T < Trials; ++T) {
    uint64_t Start = cycles();
    Fn();
    uint64_t End = cycles();
    double CyclesPerByte =
        static_cast<double>(End - Start) / static_cast<double>(BytesPerCall);
    if (CyclesPerByte < Best)
      Best = CyclesPerByte;
  }
  return Best;
}

std::optional<UsubaCipher> usuba::bench::makeCipher(
    CipherId Id, SlicingMode Slicing, const Arch &Target,
    const CipherConfig &Overrides) {
  CipherConfig Config = Overrides;
  Config.Id = Id;
  Config.Slicing = Slicing;
  Config.Target = &Target;
  // The facade auto-selects the host-compiler effort by kernel size and
  // falls back to the simulator when the host cannot run the target ISA.
  CipherResult Result = UsubaCipher::compile(Config);
  if (!Result)
    return std::nullopt;
  return std::move(Result).take();
}

double usuba::bench::ctrCyclesPerByte(UsubaCipher &Cipher) {
  // Simulator fallbacks run ~100x slower; shrink their workload so the
  // benches stay interactive (the tag printed next to the number marks
  // them as simulated anyway).
  size_t Bytes = Cipher.isNative() ? workloadBytes()
                                   : std::max<size_t>(workloadBytes() / 32,
                                                      4096);
  std::vector<uint8_t> Buffer(Bytes, 0x5A);
  std::vector<uint8_t> Key(Cipher.keyBytes(), 0x42);
  uint8_t Nonce[12] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  Cipher.setKey(Key.data(), Key.size());
  return measureCyclesPerByte(
      [&] { Cipher.ctrXor(Buffer.data(), Buffer.size(), Nonce, 0); },
      Bytes);
}

double usuba::bench::kernelCyclesPerByte(UsubaCipher &Cipher) {
  size_t BytesPerCall =
      size_t{Cipher.blocksPerCall()} * Cipher.blockBytes();
  // Enough iterations for a stable reading.
  size_t Iters = std::max<size_t>(workloadBytes() / BytesPerCall, 64);
  if (!Cipher.isNative())
    Iters = std::min<size_t>(Iters, 64);
  return measureCyclesPerByte(
      [&] {
        for (size_t I = 0; I < Iters; ++I)
          Cipher.rawKernelCall();
      },
      BytesPerCall * Iters);
}

double usuba::bench::transposeCyclesPerByte(UsubaCipher &Cipher) {
  // Run the full path and the kernel-only path over the same bytes; the
  // difference is transposition plus (small) mode-driver cost.
  double Full = ctrCyclesPerByte(Cipher);
  double Kernel = kernelCyclesPerByte(Cipher);
  return Full > Kernel ? Full - Kernel : 0;
}

double usuba::bench::kernelLatencyCycles(UsubaCipher &Cipher) {
  Cipher.rawKernelCall();
  Cipher.rawKernelCall();
  double Best = 1e30;
  for (unsigned Trial = 0; Trial < 200; ++Trial) {
    uint64_t Start = cycles();
    Cipher.rawKernelCall();
    uint64_t End = cycles();
    Best = std::min(Best, static_cast<double>(End - Start));
  }
  return Best;
}

double usuba::bench::referenceCyclesPerByte(CipherId Id) {
  size_t Bytes = workloadBytes() / 4; // the references are scalar
  switch (Id) {
  case CipherId::Rectangle: {
    uint16_t Keys[RectangleRoundKeys][4] = {};
    std::vector<uint16_t> Blocks(Bytes / 2, 0x1234);
    return measureCyclesPerByte(
        [&] {
          for (size_t B = 0; B + 4 <= Blocks.size(); B += 4)
            rectangleEncrypt(&Blocks[B], Keys);
        },
        Bytes);
  }
  case CipherId::Des: {
    uint64_t Subkeys[16];
    desKeySchedule(0x0123456789ABCDEFull, Subkeys);
    std::vector<uint64_t> Blocks(Bytes / 8, 42);
    return measureCyclesPerByte(
        [&] {
          for (uint64_t &Block : Blocks)
            Block = desEncryptBlock(Block, Subkeys);
        },
        Bytes);
  }
  case CipherId::Aes128: {
    uint8_t Key[16] = {}, RoundKeys[11][16];
    aes128KeySchedule(Key, RoundKeys);
    std::vector<uint8_t> Buffer(Bytes, 0x5A);
    return measureCyclesPerByte(
        [&] {
          for (size_t B = 0; B + 16 <= Buffer.size(); B += 16)
            aesEncryptBlock(&Buffer[B], RoundKeys);
        },
        Bytes);
  }
  case CipherId::Chacha20: {
    uint8_t Key[32] = {}, Nonce[12] = {};
    std::vector<uint8_t> Buffer(Bytes, 0x5A);
    return measureCyclesPerByte(
        [&] { chacha20Xor(Buffer.data(), Buffer.size(), Key, 0, Nonce); },
        Bytes);
  }
  case CipherId::Serpent: {
    uint8_t Key[16] = {};
    uint32_t Keys[SerpentRoundKeys][4];
    serpentKeySchedule(Key, Keys);
    std::vector<uint32_t> Blocks(Bytes / 4, 7);
    return measureCyclesPerByte(
        [&] {
          for (size_t B = 0; B + 4 <= Blocks.size(); B += 4)
            serpentEncrypt(&Blocks[B], Keys);
        },
        Bytes);
  }
  case CipherId::Present: {
    uint8_t Key[10] = {};
    uint64_t RoundKeys[32];
    presentKeySchedule80(Key, RoundKeys);
    std::vector<uint64_t> Blocks(Bytes / 8, 42);
    return measureCyclesPerByte(
        [&] {
          for (uint64_t &Block : Blocks)
            Block = presentEncryptBlock(Block, RoundKeys);
        },
        Bytes);
  }
  }
  return 0;
}

unsigned usuba::bench::usubaSloc(CipherId Id) {
  const std::string *Source = nullptr;
  switch (Id) {
  case CipherId::Rectangle:
    Source = &rectangleSource();
    break;
  case CipherId::Des:
    Source = &desSource();
    break;
  case CipherId::Aes128:
    Source = &aesSource();
    break;
  case CipherId::Chacha20:
    Source = &chacha20Source();
    break;
  case CipherId::Serpent:
    Source = &serpentSource();
    break;
  case CipherId::Present:
    Source = &presentSource();
    break;
  }
  unsigned Lines = 0;
  std::istringstream Stream(*Source);
  std::string Line;
  while (std::getline(Stream, Line)) {
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos)
      continue;
    if (Line.compare(First, 2, "//") == 0)
      continue;
    ++Lines;
  }
  return Lines;
}

const char *usuba::bench::engineTag(const UsubaCipher &Cipher) {
  return Cipher.isNative() ? "native" : "sim";
}

void usuba::bench::printRow(const std::vector<std::string> &Cells,
                            const std::vector<int> &Widths) {
  std::string Line;
  for (size_t I = 0; I < Cells.size(); ++I) {
    int Width = I < Widths.size() ? Widths[I] : 12;
    char Buffer[256];
    std::snprintf(Buffer, sizeof(Buffer), "%-*s", Width, Cells[I].c_str());
    Line += Buffer;
  }
  std::printf("%s\n", Line.c_str());
}

std::string usuba::bench::fmt(double Value, int Decimals) {
  char Buffer[64];
  std::snprintf(Buffer, sizeof(Buffer), "%.*f", Decimals, Value);
  return Buffer;
}
