//===- service_latency.cpp - CipherService latency under offered load -----===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures CipherService request latency and throughput under an
/// open-loop Poisson arrival process — the machine-readable companion
/// to BENCH_throughput.json, checked in as BENCH_latency.json and
/// validated by scripts/bench_gate.py --validate-latency.
///
/// Model: each session is one tenant. A session draws exponential
/// inter-arrival gaps (total offered load split evenly across
/// sessions) and keeps at most one request in flight — the classic
/// serving-client shape, which is exactly why multi-tenancy matters: a
/// lone session can never coalesce with itself, while 32 concurrent
/// sessions pack one shard's batches full. Latency is measured from
/// the *scheduled* arrival, not the actual submit, so a backed-up
/// session cannot hide queueing delay (no coordinated omission).
///
/// Latencies are recorded into the shared lock-free Histogram
/// (support/Histogram.h) — the same structure the service's own stage
/// histograms use — and each result row embeds the per-combo deltas of
/// the service's queue-wait / coalesce-wait / kernel / callback stage
/// histograms ("stages"), so the checked-in baseline says not just how
/// slow p99 was but *where* the time went.
///
/// Usage: service_latency [--out FILE] [--sessions n,m] [--rps r,s]
///                        [--seconds S] [--deadline-us D] [--payload B]
///                        [--no-telemetry] [--metrics FILE]
/// Defaults: stdout; sessions {1,32}; offered load {2000,20000} rps;
/// 1 s per combination; 200 us flush deadline; 64-byte requests over
/// DES/bitslice/sse (the paper's deep-batch shape: 128 blocks per
/// call). --no-telemetry measures with metrics off (the overhead
/// baseline CI compares against); --metrics dumps the Prometheus
/// exposition after the run.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "service/CipherService.h"

#include "support/Telemetry.h"
#include "types/Arch.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

using namespace usuba;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<unsigned> parseList(const char *Arg) {
  std::vector<unsigned> Out;
  unsigned Value = 0;
  bool Have = false;
  for (const char *P = Arg;; ++P) {
    if (*P >= '0' && *P <= '9') {
      Value = Value * 10 + unsigned(*P - '0');
      Have = true;
    } else if (*P == ',' || *P == '\0') {
      if (Have)
        Out.push_back(Value);
      Value = 0;
      Have = false;
      if (*P == '\0')
        break;
    }
  }
  return Out;
}

/// The four per-request lifecycle stages the service records (see
/// CipherService.h "Observability") — row order is emission order.
struct StageDef {
  const char *Key;
  const char *HistName;
};
constexpr StageDef StageDefs[] = {
    {"queue_wait", "service.queue_wait_ns"},
    {"coalesce_wait", "service.coalesce_wait_ns"},
    {"kernel", "service.kernel_ns"},
    {"callback", "service.callback_ns"},
};
constexpr size_t NumStages = sizeof(StageDefs) / sizeof(StageDefs[0]);

struct ComboResult {
  unsigned Sessions = 0;
  unsigned OfferedRps = 0;
  uint64_t Completed = 0;
  double AchievedRps = 0;
  double P50Us = 0, P99Us = 0, MeanUs = 0;
  ServiceStats Stats;
  /// Per-combo deltas of the service stage histograms (telemetry runs
  /// only — HasStages false when metrics were off).
  bool HasStages = false;
  Histogram::Snapshot Stages[NumStages];
};

/// One (sessions, offered-rps) measurement: spin up the service and the
/// per-session clients, run for Seconds, aggregate latencies.
ComboResult runCombo(const CipherConfig &Config,
                     const std::vector<uint8_t> &Key, unsigned Sessions,
                     unsigned OfferedRps, double Seconds, unsigned DeadlineUs,
                     size_t PayloadBytes, uint64_t Seed) {
  ServiceConfig Svc;
  Svc.FlushDeadline = std::chrono::microseconds(DeadlineUs);

  // Per-combo stage attribution: the service histograms are
  // process-lifetime, so the combo's share is the snapshot delta.
  const bool Metrics = telemetryEnabled();
  Histogram::Snapshot StageBefore[NumStages];
  if (Metrics)
    for (size_t I = 0; I < NumStages; ++I)
      StageBefore[I] =
          Telemetry::instance().histogramRef(StageDefs[I].HistName).snapshot();

  CipherService Service(Svc);

  // One tenant key: the multi-session win this bench demonstrates is
  // same-shard coalescing (cross-key sessions never share a batch).
  // One shared lock-free histogram takes every client's samples.
  Histogram LatencyNs;
  std::vector<std::thread> Clients;
  const double RatePerSession =
      double(OfferedRps) / double(std::max(1u, Sessions));
  const auto Start = Clock::now();
  const auto End = Start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(Seconds));

  for (unsigned S = 0; S < Sessions; ++S) {
    Clients.emplace_back([&, S] {
      SessionResult R = Service.openSession(Config, Key.data(), Key.size());
      if (!R.ok()) {
        std::fprintf(stderr, "openSession: %s\n", R.errorText().c_str());
        return;
      }
      std::mt19937_64 Rng(Seed + S);
      std::exponential_distribution<double> Gap(RatePerSession);
      std::vector<uint8_t> Payload(PayloadBytes, uint8_t(S));
      uint8_t Nonce[12] = {};
      Nonce[0] = uint8_t(S + 1);
      uint64_t Counter = 0;
      auto Scheduled = Clock::now();
      while (true) {
        Scheduled += std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(Gap(Rng)));
        if (Scheduled >= End)
          break;
        std::this_thread::sleep_until(Scheduled); // No-op when behind.
        Service
            .submitCtrXor(R.id(), Payload.data(), Payload.size(), Nonce,
                          Counter)
            .get();
        const auto Lat = std::chrono::duration_cast<std::chrono::nanoseconds>(
                             Clock::now() - Scheduled)
                             .count();
        LatencyNs.record(Lat > 0 ? static_cast<uint64_t>(Lat) : 0);
        Counter += 1024; // Keep per-request counter ranges disjoint.
      }
      Service.closeSession(R.id());
    });
  }
  for (std::thread &T : Clients)
    T.join();
  const double Elapsed =
      std::chrono::duration<double>(Clock::now() - Start).count();
  Service.flush();

  const Histogram::Snapshot Lat = LatencyNs.snapshot();
  ComboResult Res;
  Res.Sessions = Sessions;
  Res.OfferedRps = OfferedRps;
  Res.Completed = Lat.Count;
  Res.AchievedRps = Elapsed > 0 ? double(Lat.Count) / Elapsed : 0;
  Res.P50Us = double(Lat.percentile(0.50)) / 1e3;
  Res.P99Us = double(Lat.percentile(0.99)) / 1e3;
  Res.MeanUs = Lat.mean() / 1e3;
  Res.Stats = Service.stats();
  if (Metrics) {
    Res.HasStages = true;
    for (size_t I = 0; I < NumStages; ++I) {
      Res.Stages[I] =
          Telemetry::instance().histogramRef(StageDefs[I].HistName).snapshot();
      Res.Stages[I].subtract(StageBefore[I]);
    }
  }
  return Res;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *OutPath = nullptr;
  const char *MetricsPath = nullptr;
  std::vector<unsigned> Sessions = {1, 32};
  std::vector<unsigned> Rps = {2000, 20000};
  double Seconds = 1.0;
  unsigned DeadlineUs = 200;
  size_t PayloadBytes = 64;
  bool NoTelemetry = false;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--out") && I + 1 < Argc)
      OutPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--metrics") && I + 1 < Argc)
      MetricsPath = Argv[++I];
    else if (!std::strcmp(Argv[I], "--sessions") && I + 1 < Argc)
      Sessions = parseList(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--rps") && I + 1 < Argc)
      Rps = parseList(Argv[++I]);
    else if (!std::strcmp(Argv[I], "--seconds") && I + 1 < Argc)
      Seconds = std::strtod(Argv[++I], nullptr);
    else if (!std::strcmp(Argv[I], "--deadline-us") && I + 1 < Argc)
      DeadlineUs = unsigned(std::strtoul(Argv[++I], nullptr, 10));
    else if (!std::strcmp(Argv[I], "--payload") && I + 1 < Argc)
      PayloadBytes = std::strtoul(Argv[++I], nullptr, 10);
    else if (!std::strcmp(Argv[I], "--no-telemetry"))
      NoTelemetry = true;
    else {
      std::fprintf(stderr,
                   "usage: %s [--out FILE] [--sessions n,m] [--rps r,s] "
                   "[--seconds S] [--deadline-us D] [--payload B] "
                   "[--no-telemetry] [--metrics FILE]\n",
                   Argv[0]);
      return 2;
    }
  }

  CipherConfig Config;
  Config.Id = CipherId::Des;
  Config.Slicing = SlicingMode::Bitslice;
  Config.Target = &archSSE();
  std::vector<uint8_t> Key(8, 0x5A);

  // Warm the process kernel cache before any timed window: the first
  // shard a combo opens would otherwise spend its whole measurement
  // interval inside the JIT.
  {
    CipherResult Warm = UsubaCipher::compile(Config);
    if (!Warm) {
      std::fprintf(stderr, "compile: %s\n", Warm.errorText().c_str());
      return 1;
    }
  }

  if (!NoTelemetry)
    Telemetry::instance().setEnabled(true);

  std::vector<ComboResult> Results;
  for (unsigned S : Sessions)
    for (unsigned R : Rps)
      Results.push_back(runCombo(Config, Key, S, R, Seconds, DeadlineUs,
                                 PayloadBytes, /*Seed=*/0x1a7e4c1));

  FILE *Out = OutPath ? std::fopen(OutPath, "w") : stdout;
  if (!Out) {
    std::fprintf(stderr, "cannot open %s\n", OutPath);
    return 1;
  }
  std::fprintf(Out,
               "{\n  \"cipher\": \"des\",\n  \"slicing\": \"bitslice\",\n"
               "  \"arch\": \"sse\",\n  \"payload_bytes\": %zu,\n"
               "  \"deadline_us\": %u,\n  \"seconds_per_combo\": %.3f,\n"
               "  \"host_threads\": %u,\n  \"results\": [",
               PayloadBytes, DeadlineUs, Seconds,
               std::max(1u, std::thread::hardware_concurrency()));
  bool First = true;
  bool AnyEmpty = false;
  for (const ComboResult &R : Results) {
    AnyEmpty = AnyEmpty || R.Completed == 0;
    std::fprintf(
        Out,
        "%s\n    {\"sessions\": %u, \"offered_rps\": %u, "
        "\"completed\": %llu, \"achieved_rps\": %.1f, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f, \"mean_us\": %.1f, "
        "\"fill_ratio\": %.4f, \"coalesced_batches\": %llu, "
        "\"multi_session_batches\": %llu, \"direct_batches\": %llu, "
        "\"deadline_flushes\": %llu, \"slow_requests\": %llu",
        First ? "" : ",", R.Sessions, R.OfferedRps,
        static_cast<unsigned long long>(R.Completed), R.AchievedRps, R.P50Us,
        R.P99Us, R.MeanUs, R.Stats.fillRatio(),
        static_cast<unsigned long long>(R.Stats.CoalescedBatches),
        static_cast<unsigned long long>(R.Stats.MultiSessionBatches),
        static_cast<unsigned long long>(R.Stats.DirectBatches),
        static_cast<unsigned long long>(R.Stats.DeadlineFlushes),
        static_cast<unsigned long long>(R.Stats.SlowRequests));
    if (R.HasStages) {
      std::fprintf(Out, ", \"stages\": {");
      for (size_t I = 0; I < NumStages; ++I) {
        const Histogram::Snapshot &S = R.Stages[I];
        std::fprintf(Out,
                     "%s\"%s\": {\"count\": %llu, \"p50_us\": %.1f, "
                     "\"p99_us\": %.1f, \"mean_us\": %.1f}",
                     I ? ", " : "", StageDefs[I].Key,
                     static_cast<unsigned long long>(S.Count),
                     double(S.percentile(0.50)) / 1e3,
                     double(S.percentile(0.99)) / 1e3, S.mean() / 1e3);
      }
      std::fprintf(Out, "}");
    }
    std::fprintf(Out, "}");
    First = false;
  }
  std::fprintf(Out, "\n  ],\n  \"telemetry\": %s\n}\n",
               Telemetry::instance().snapshotJson().c_str());
  if (OutPath)
    std::fclose(Out);
  if (MetricsPath) {
    FILE *MOut = std::fopen(MetricsPath, "w");
    if (!MOut) {
      std::fprintf(stderr, "cannot open %s\n", MetricsPath);
      return 1;
    }
    const std::string Prom = Telemetry::instance().exportMetrics();
    std::fwrite(Prom.data(), 1, Prom.size(), MOut);
    std::fclose(MOut);
  }
  if (AnyEmpty) {
    std::fprintf(stderr, "a combination completed zero requests\n");
    return 1;
  }
  return 0;
}
