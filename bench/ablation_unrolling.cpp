//===- ablation_unrolling.cpp - Section 3.2 unrolling numbers -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 3.2 unrolling experiment: full unrolling lets
/// the scheduler move instructions across rounds — "On AES (resp.
/// Chacha20), this yields a 3.22% (resp. 3.63%) speedup compared to an
/// implementation performing intra-round scheduling only". Our
/// "no-unroll" configuration models the not-unrolled loop as scheduling
/// barriers between `forall` iterations (see DESIGN.md).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>

using namespace usuba;
using namespace usuba::bench;

int main() {
  std::printf("Section 3.2 ablation: unrolling / cross-round scheduling "
              "(kernel-only cycles/byte)\n\n");
  const std::vector<int> W = {11, 10, 8, 16, 14, 12, 10};
  printRow({"cipher", "slicing", "target", "intra-round c/b",
            "cross-round c/b", "speedup", "paper"},
           W);

  struct Case {
    CipherId Id;
    SlicingMode Slicing;
    ArchKind Target;
    const char *Paper;
  };
  const Case Cases[] = {
      {CipherId::Aes128, SlicingMode::Hslice, ArchKind::SSE, "+3.22%"},
      {CipherId::Chacha20, SlicingMode::Vslice, ArchKind::AVX2, "+3.63%"},
  };

  for (const Case &C : Cases) {
    CipherConfig NoUnroll;
    NoUnroll.Unroll = false;
    std::optional<UsubaCipher> Intra =
        makeCipher(C.Id, C.Slicing, archFor(C.Target), NoUnroll);
    std::optional<UsubaCipher> Cross =
        makeCipher(C.Id, C.Slicing, archFor(C.Target));
    if (!Intra || !Cross) {
      std::printf("compilation failed for %s\n", cipherName(C.Id));
      continue;
    }
    double IntraCpb = kernelCyclesPerByte(*Intra);
    double CrossCpb = kernelCyclesPerByte(*Cross);
    double Speedup = (IntraCpb / CrossCpb - 1.0) * 100.0;
    printRow({cipherName(C.Id), slicingName(C.Slicing),
              archFor(C.Target).Name, fmt(IntraCpb), fmt(CrossCpb),
              fmt(Speedup, 1) + "%", C.Paper},
             W);
  }
  return 0;
}
