//===- dudect_report.cpp - Section 4 constant-time validation -------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's dudect validation ("All our implementations
/// have received a green flag, unsurprisingly"): every Usuba-compiled
/// kernel is timed on fixed-versus-random inputs and Welch's t-test is
/// applied. |t| < 4.5 is a green flag. A deliberately input-dependent
/// control (early-exit memcmp-style loop) is included to show the test
/// detects real leaks.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "runtime/Dudect.h"

#include <cstdio>
#include <cstring>
#include <random>
#include <vector>

using namespace usuba;
using namespace usuba::bench;

int main() {
  std::printf("dudect constant-time validation (fixed-vs-random inputs, "
              "Welch t-test; |t| < 4.5 is a green flag)\n\n");
  const std::vector<int> W = {11, 10, 9, 10, 10};
  printRow({"cipher", "slicing", "|t|", "verdict", "engine"}, W);

  struct Case {
    CipherId Id;
    SlicingMode Slicing;
  };
  const Case Cases[] = {
      {CipherId::Rectangle, SlicingMode::Vslice},
      {CipherId::Des, SlicingMode::Bitslice},
      {CipherId::Aes128, SlicingMode::Hslice},
      {CipherId::Chacha20, SlicingMode::Vslice},
      {CipherId::Serpent, SlicingMode::Vslice},
      {CipherId::Present, SlicingMode::Bitslice},
  };

  for (const Case &C : Cases) {
    std::optional<UsubaCipher> Cipher =
        makeCipher(C.Id, C.Slicing, archAVX2());
    if (!Cipher) {
      std::printf("compilation failed for %s\n", cipherName(C.Id));
      continue;
    }
    std::vector<uint8_t> Key(Cipher->keyBytes(), 0x42);
    Cipher->setKey(Key.data(), Key.size());

    const size_t Bytes =
        size_t{Cipher->blocksPerCall()} * Cipher->blockBytes();
    std::vector<uint8_t> Out(Bytes);
    const bool Stream = C.Id == CipherId::Chacha20;
    uint8_t Nonce[12] = {};

    DudectConfig Config;
    Config.Measurements = 40000;
    DudectResult Result = dudect(
        Config, Bytes,
        [&](unsigned Class, uint8_t *Input, uint64_t Seed) {
          if (Class == 0) {
            std::memset(Input, 0, Bytes);
            return;
          }
          std::mt19937_64 Rng(Seed);
          for (size_t I = 0; I < Bytes; ++I)
            Input[I] = static_cast<uint8_t>(Rng());
        },
        [&](const uint8_t *Input) {
          if (Stream) {
            std::memcpy(Out.data(), Input, Bytes);
            Cipher->ctrXor(Out.data(), Bytes, Nonce, 0);
          } else {
            Cipher->ecbEncrypt(Input, Out.data(),
                               Bytes / Cipher->blockBytes());
          }
        });
    double T = Result.TStatistic < 0 ? -Result.TStatistic
                                     : Result.TStatistic;
    printRow({cipherName(C.Id), slicingName(C.Slicing), fmt(T, 2),
              Result.leakDetected() ? "LEAK?" : "green",
              engineTag(*Cipher)},
             W);
  }

  // Control: a deliberately variable-time operation (early-exit compare)
  // must light up red, demonstrating the harness has power.
  {
    volatile unsigned Sink = 0;
    DudectConfig Config;
    Config.Measurements = 40000;
    const size_t Bytes = 4096;
    DudectResult Result = dudect(
        Config, Bytes,
        [&](unsigned Class, uint8_t *Input, uint64_t Seed) {
          std::mt19937_64 Rng(Seed);
          if (Class == 0) {
            std::memset(Input, 0, Bytes);
            return;
          }
          for (size_t I = 0; I < Bytes; ++I)
            Input[I] = static_cast<uint8_t>(Rng());
        },
        [&](const uint8_t *Input) {
          // Scans until the first nonzero byte: obviously input-timed.
          size_t I = 0;
          while (I < Bytes && Input[I] == 0)
            ++I;
          Sink = Sink + static_cast<unsigned>(I);
        });
    double T = Result.TStatistic < 0 ? -Result.TStatistic
                                     : Result.TStatistic;
    printRow({"(control)", "early-exit", fmt(T, 2),
              Result.leakDetected() ? "LEAK (expected)" : "UNDETECTED?",
              "native"},
             W);
  }
  return 0;
}
