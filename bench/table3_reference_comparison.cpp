//===- table3_reference_comparison.cpp - Paper Table 3 --------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Table 3: for each (mode, cipher, instruction set) row of
/// the paper, the throughput of the Usuba-compiled kernel next to a
/// reference implementation, plus code size (SLOC).
///
/// Differences from the paper's setup (see DESIGN.md):
///  * the baseline is our portable C++ reference at -O3, not hand-tuned
///    SUPERCOP assembly — so our speedups are much larger than the
///    paper's (which compares against code already within a few percent
///    of optimal);
///  * "usuba kern" excludes transposition (comparable to the paper's
///    primitive focus); "usuba e2e" includes our scalar transposition.
/// The paper's own numbers are printed alongside for reference.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>

using namespace usuba;
using namespace usuba::bench;

namespace {

struct Row {
  const char *Mode;
  CipherId Id;
  SlicingMode Slicing;
  ArchKind Target;
  const char *InstrSet;
  double PaperRef;   ///< reference cycles/byte from Table 3
  double PaperUsuba; ///< Usuba cycles/byte from Table 3
  unsigned PaperSloc;
};

const Row Rows[] = {
    {"bitslicing", CipherId::Des, SlicingMode::Bitslice, ArchKind::GP64,
     "x86-64", 12.01, 11.47, 655},
    {"16-hslicing", CipherId::Aes128, SlicingMode::Hslice, ArchKind::SSE,
     "SSSE3", 7.77, 7.92, 218},
    {"16-hslicing", CipherId::Aes128, SlicingMode::Hslice, ArchKind::AVX,
     "AVX", 5.59, 5.71, 218},
    {"32-vslicing", CipherId::Chacha20, SlicingMode::Vslice, ArchKind::AVX2,
     "AVX2", 1.03, 1.02, 24},
    {"32-vslicing", CipherId::Chacha20, SlicingMode::Vslice, ArchKind::AVX,
     "AVX", 2.09, 2.07, 24},
    {"32-vslicing", CipherId::Chacha20, SlicingMode::Vslice, ArchKind::SSE,
     "SSSE3", 2.72, 2.31, 24},
    {"32-vslicing", CipherId::Chacha20, SlicingMode::Vslice, ArchKind::GP64,
     "x86-64", 5.64, 5.65, 24},
    {"32-vslicing", CipherId::Serpent, SlicingMode::Vslice, ArchKind::AVX2,
     "AVX2", 4.33, 4.53, 214},
    {"32-vslicing", CipherId::Serpent, SlicingMode::Vslice, ArchKind::AVX,
     "AVX", 8.36, 8.66, 214},
    {"32-vslicing", CipherId::Serpent, SlicingMode::Vslice, ArchKind::SSE,
     "SSE2", 11.48, 11.29, 214},
    {"32-vslicing", CipherId::Serpent, SlicingMode::Vslice, ArchKind::GP64,
     "x86-64", 30.37, 25.78, 214},
    {"16-vslicing", CipherId::Rectangle, SlicingMode::Vslice, ArchKind::AVX2,
     "AVX2", 2.45, 2.10, 31},
    {"16-vslicing", CipherId::Rectangle, SlicingMode::Vslice, ArchKind::AVX,
     "AVX", 4.92, 4.21, 31},
    {"16-vslicing", CipherId::Rectangle, SlicingMode::Vslice, ArchKind::SSE,
     "SSE4.2", 14.51, 11.18, 31},
    {"16-vslicing", CipherId::Rectangle, SlicingMode::Vslice, ArchKind::GP64,
     "x86-64", 28.61, 25.88, 31},
};

} // namespace

int main() {
  std::printf("Table 3 reproduction: Usuba kernels vs reference "
              "implementations (cycles/byte, lower is better)\n\n");
  const std::vector<int> W = {12, 11, 8, 6, 6, 10, 10, 11, 11, 9, 9, 8};
  printRow({"mode", "cipher", "iset", "slocP", "sloc", "ref(P)", "us(P)",
            "ref-ours", "us-kern", "us-e2e", "latency", "engine"},
           W);

  // Reference baselines are measured once per cipher.
  double RefCache[6] = {-1, -1, -1, -1, -1, -1};
  // Table 2's optimal configurations: interleaving helps the small-state
  // m-sliced ciphers (Rectangle, Serpent).
  for (const Row &R : Rows) {
    const Arch &Target = archFor(R.Target);
    CipherConfig Overrides;
    Overrides.Interleave =
        R.Id == CipherId::Rectangle || R.Id == CipherId::Serpent;
    std::optional<UsubaCipher> Cipher =
        makeCipher(R.Id, R.Slicing, Target, Overrides);
    if (!Cipher) {
      printRow({R.Mode, cipherName(R.Id), R.InstrSet, "-", "-", "-", "-",
                "-", "unsupported"},
               W);
      continue;
    }
    unsigned Index = static_cast<unsigned>(R.Id);
    if (RefCache[Index] < 0)
      RefCache[Index] = referenceCyclesPerByte(R.Id);

    double Kernel = kernelCyclesPerByte(*Cipher);
    double EndToEnd = ctrCyclesPerByte(*Cipher);
    double Latency = kernelLatencyCycles(*Cipher);
    printRow({R.Mode, cipherName(R.Id), R.InstrSet,
              std::to_string(R.PaperSloc), std::to_string(usubaSloc(R.Id)),
              fmt(R.PaperRef), fmt(R.PaperUsuba), fmt(RefCache[Index]),
              fmt(Kernel), fmt(EndToEnd), fmt(Latency, 0),
              engineTag(*Cipher)},
             W);
  }

  std::printf("\n(P) columns are the paper's measurements on Skylake; "
              "ref-ours is our portable C++ baseline; us-kern excludes "
              "transposition, us-e2e includes it.\n");
  return 0;
}
