//===- ablation_interleaving.cpp - Section 3.2 interleaving numbers -------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 3.2 interleaving experiment: "On Serpent, the
/// throughput of 2 interleaved ciphers is 21.75% higher than the
/// throughput of a single cipher, while increasing the code size by
/// 29.3%. Similarly for Rectangle, the throughput increases by 27.62% at
/// the expense of a 19.2% increase in code size."
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>

using namespace usuba;
using namespace usuba::bench;

int main() {
  std::printf("Section 3.2 ablation: interleaving (vsliced, AVX2-class "
              "target; kernel-only cycles/byte)\n\n");
  const std::vector<int> W = {11, 8, 12, 12, 14, 14, 16};
  printRow({"cipher", "factor", "plain c/b", "intl c/b", "speedup",
            "size delta", "paper speedup"},
           W);

  struct Case {
    CipherId Id;
    const char *PaperSpeedup;
    const char *PaperSize;
  };
  const Case Cases[] = {
      {CipherId::Serpent, "+21.75%", "+29.3%"},
      {CipherId::Rectangle, "+27.62%", "+19.2%"},
  };

  for (const Case &C : Cases) {
    CipherConfig Plain, Interleaved;
    Interleaved.Interleave = true;
    // The paper interleaves both ciphers 2-way. Our register-pressure
    // estimate for Serpent lands at 14 (the BDD S-box circuits use more
    // temporaries than Osvik's), so the heuristic alone would pick x1;
    // pin the paper's factor to reproduce its experiment.
    Interleaved.InterleaveFactorOverride = 2;
    std::optional<UsubaCipher> Base =
        makeCipher(C.Id, SlicingMode::Vslice, archAVX2(), Plain);
    std::optional<UsubaCipher> Intl =
        makeCipher(C.Id, SlicingMode::Vslice, archAVX2(), Interleaved);
    if (!Base || !Intl) {
      std::printf("compilation failed for %s\n", cipherName(C.Id));
      continue;
    }
    double BaseCpb = kernelCyclesPerByte(*Base);
    double IntlCpb = kernelCyclesPerByte(*Intl);
    double Speedup = (BaseCpb / IntlCpb - 1.0) * 100.0;
    double SizeDelta =
        (static_cast<double>(Intl->kernel().InstrCount) /
             static_cast<double>(Intl->kernel().InterleaveFactor()) /
             static_cast<double>(Base->kernel().InstrCount) -
         1.0) *
        100.0;
    // Interleaving duplicates the stream, so per-instance code size is
    // flat in our IR; report the real binary growth instead: total
    // instructions versus the single instance.
    double CodeGrowth =
        (static_cast<double>(Intl->kernel().InstrCount) /
             static_cast<double>(Base->kernel().InstrCount) -
         1.0) *
        100.0;
    (void)SizeDelta;
    printRow({cipherName(C.Id),
              std::to_string(Intl->kernel().InterleaveFactor()),
              fmt(BaseCpb), fmt(IntlCpb), fmt(Speedup, 1) + "%",
              "+" + fmt(CodeGrowth, 1) + "%",
              std::string(C.PaperSpeedup) + " / " + C.PaperSize},
             W);
  }

  std::printf("\n(The paper interleaves 2 instances of both ciphers; the "
              "speedup comes from instruction-level parallelism hiding "
              "data hazards.)\n");
  return 0;
}
