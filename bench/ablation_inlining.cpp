//===- ablation_inlining.cpp - Section 3.2 inlining numbers ---------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 3.2 inlining experiment: "On DES, inlining
/// results in a 44.8% improvement in throughput ... a bitsliced
/// implementation of AES is 24.24% more efficient with inlining".
/// Without inlining, a bitsliced round function becomes a C call with
/// hundreds of spilled arguments — exactly the cost the paper measures.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>

using namespace usuba;
using namespace usuba::bench;

int main() {
  std::printf("Section 3.2 ablation: inlining (bitsliced, x86-64 target; "
              "kernel-only cycles/byte)\n\n");
  const std::vector<int> W = {11, 14, 12, 12, 12, 14};
  printRow({"cipher", "no-inline c/b", "inline c/b", "speedup", "size",
            "paper"},
           W);

  struct Case {
    CipherId Id;
    bool Heavy;
    const char *Paper;
  };
  const Case Cases[] = {
      {CipherId::Des, false, "+44.8%"},
      {CipherId::Aes128, true, "+24.24%"},
  };

  for (const Case &C : Cases) {
    if (C.Heavy && !fullMode()) {
      std::printf("%-11s (set USUBA_BENCH_FULL=1 for bitsliced AES)\n",
                  cipherName(C.Id));
      continue;
    }
    CipherConfig NoInline;
    NoInline.Inline = false;
    std::optional<UsubaCipher> Plain =
        makeCipher(C.Id, SlicingMode::Bitslice, archGP64(), NoInline);
    std::optional<UsubaCipher> Inlined =
        makeCipher(C.Id, SlicingMode::Bitslice, archGP64());
    if (!Plain || !Inlined) {
      std::printf("compilation failed for %s\n", cipherName(C.Id));
      continue;
    }
    double PlainCpb = kernelCyclesPerByte(*Plain);
    double InlinedCpb = kernelCyclesPerByte(*Inlined);
    double Speedup = (PlainCpb / InlinedCpb - 1.0) * 100.0;
    double Size = (static_cast<double>(Inlined->kernel().InstrCount) /
                       static_cast<double>(Plain->kernel().InstrCount) -
                   1.0) *
                  100.0;
    printRow({cipherName(C.Id), fmt(PlainCpb), fmt(InlinedCpb),
              fmt(Speedup, 1) + "%", fmt(Size, 1) + "%", C.Paper},
             W);
  }
  return 0;
}
