//===- ablation_scheduling.cpp - Section 3.2 scheduling numbers -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Section 3.2 scheduling experiments: the bitslice
/// scheduler (Algorithm 1, reduces spilling: DES +6.77%, bitsliced AES
/// +2.49% over inlining alone) and the m-slice scheduler (look-behind
/// window, raises ILP: hsliced AES +2.43%, vsliced Chacha20 +9.09%).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>

using namespace usuba;
using namespace usuba::bench;

int main() {
  std::printf("Section 3.2 ablation: scheduling (kernel-only "
              "cycles/byte)\n\n");
  const std::vector<int> W = {11, 10, 8, 14, 12, 12, 10};
  printRow({"cipher", "slicing", "target", "no-sched c/b", "sched c/b",
            "speedup", "paper"},
           W);

  struct Case {
    CipherId Id;
    SlicingMode Slicing;
    ArchKind Target;
    bool Heavy;
    const char *Paper;
  };
  const Case Cases[] = {
      {CipherId::Des, SlicingMode::Bitslice, ArchKind::GP64, false,
       "+6.77%"},
      {CipherId::Aes128, SlicingMode::Bitslice, ArchKind::GP64, true,
       "+2.49%"},
      {CipherId::Aes128, SlicingMode::Hslice, ArchKind::SSE, false,
       "+2.43%"},
      {CipherId::Chacha20, SlicingMode::Vslice, ArchKind::AVX2, false,
       "+9.09%"},
  };

  for (const Case &C : Cases) {
    if (C.Heavy && !fullMode()) {
      std::printf("%-11s (set USUBA_BENCH_FULL=1 for bitsliced AES)\n",
                  cipherName(C.Id));
      continue;
    }
    CipherConfig NoSched;
    NoSched.Schedule = false;
    std::optional<UsubaCipher> Plain =
        makeCipher(C.Id, C.Slicing, archFor(C.Target), NoSched);
    std::optional<UsubaCipher> Scheduled =
        makeCipher(C.Id, C.Slicing, archFor(C.Target));
    if (!Plain || !Scheduled) {
      std::printf("compilation failed for %s\n", cipherName(C.Id));
      continue;
    }
    double PlainCpb = kernelCyclesPerByte(*Plain);
    double SchedCpb = kernelCyclesPerByte(*Scheduled);
    double Speedup = (PlainCpb / SchedCpb - 1.0) * 100.0;
    printRow({cipherName(C.Id), slicingName(C.Slicing),
              archFor(C.Target).Name, fmt(PlainCpb), fmt(SchedCpb),
              fmt(Speedup, 1) + "%", C.Paper},
             W);
  }

  std::printf("\n(The host C compiler also schedules; the paper's effect "
              "is what its scheduling adds on top of the C compiler's, "
              "which is what this measures too.)\n");
  return 0;
}
