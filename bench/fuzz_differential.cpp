//===- fuzz_differential.cpp - Random-program differential campaign -------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CLI for the compiler-trust fuzzing campaign (ciphers/FuzzHarness.h):
/// random typed programs, each compiled -O0 vs optimized across
/// gp64/sse/avx2/avx512 (with a sampled JIT leg) and diffed byte for
/// byte. Exit status 0 = zero differentials, 1 = at least one (minimized
/// reproducers land in --out-dir), 2 = usage error.
///
///   fuzz_differential --seed 0xC0FFEE --count 200 --jit-every 8 \
///       --out-dir build/fuzz-repro
///   fuzz_differential --replay tests/fuzz/corpus/diff-seed-42.ua
///
//===----------------------------------------------------------------------===//

#include "src/ciphers/FuzzHarness.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

using namespace usuba;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --seed N        campaign seed (default 1; each failing program's\n"
      "                  own seed is printed for replay)\n"
      "  --count N       programs to generate (default 100)\n"
      "  --jit-every N   run a JIT-compiled native leg every Nth program\n"
      "                  (default 8; 0 disables the native legs)\n"
      "  --validate      compile optimized legs under translation\n"
      "                  validation (a second oracle inside the compiler)\n"
      "  --no-minimize   write failing programs unshrunk\n"
      "  --out-dir DIR   where minimized reproducers are written\n"
      "  --replay FILE   replay one reproducer instead of a campaign\n",
      Argv0);
}

bool parseU64(const char *Text, uint64_t &Value) {
  char *End = nullptr;
  Value = std::strtoull(Text, &End, 0);
  return End != Text && *End == '\0';
}

} // namespace

int main(int Argc, char **Argv) {
  FuzzOptions Opts;
  std::vector<std::string> ReplayFiles;
  for (int I = 1; I < Argc; ++I) {
    const std::string Arg = Argv[I];
    auto NextValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--seed") {
      const char *V = NextValue();
      uint64_t Seed;
      if (!V || !parseU64(V, Seed)) {
        usage(Argv[0]);
        return 2;
      }
      Opts.Seed = Seed;
    } else if (Arg == "--count") {
      const char *V = NextValue();
      uint64_t Count;
      if (!V || !parseU64(V, Count)) {
        usage(Argv[0]);
        return 2;
      }
      Opts.Count = static_cast<unsigned>(Count);
    } else if (Arg == "--jit-every") {
      const char *V = NextValue();
      uint64_t Every;
      if (!V || !parseU64(V, Every)) {
        usage(Argv[0]);
        return 2;
      }
      Opts.JitEvery = static_cast<unsigned>(Every);
    } else if (Arg == "--validate") {
      Opts.Validate = true;
    } else if (Arg == "--no-minimize") {
      Opts.Minimize = false;
    } else if (Arg == "--out-dir") {
      const char *V = NextValue();
      if (!V) {
        usage(Argv[0]);
        return 2;
      }
      Opts.CorpusDir = V;
    } else if (Arg == "--replay") {
      const char *V = NextValue();
      if (!V) {
        usage(Argv[0]);
        return 2;
      }
      ReplayFiles.push_back(V);
    } else {
      usage(Argv[0]);
      return 2;
    }
  }

  if (!ReplayFiles.empty()) {
    int Status = 0;
    for (const std::string &File : ReplayFiles) {
      std::string Failure = replayFuzzFile(File);
      if (Failure.empty()) {
        std::cout << "[replay] " << File << ": ok\n";
      } else {
        std::cout << "[replay] " << File << ": FAIL: " << Failure << "\n";
        Status = 1;
      }
    }
    return Status;
  }

  Opts.Log = &std::cout;
  FuzzResult Result = runFuzzCampaign(Opts);
  return Result.clean() ? 0 : 1;
}
