//===- transposition_cost.cpp - Section 4.3 transposition costs -----------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the pack/unpack (transposition) cost of every data layout of
/// Figure 2, per byte of cipher data. The paper reports, e.g., 0.09
/// cycles/byte for uV16x4 on AVX512 versus up to 10.76 for uH16x4 on SSE
/// (Section 4.2) — vertical transposition is cheap, horizontal and
/// bitslice transposition expensive. Our transposition is portable
/// scalar code, so absolute numbers are higher; the ordering is the
/// experiment.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"
#include "runtime/Layout.h"

#include <cstdio>
#include <vector>

using namespace usuba;
using namespace usuba::bench;

namespace {

double layoutCost(Dir Direction, unsigned MBits, const Arch &Target,
                  unsigned AtomsPerBlock) {
  SliceLayout Layout(Direction, MBits, Target);
  const unsigned Slices = Layout.slices();
  std::vector<uint64_t> Blocks(size_t{Slices} * AtomsPerBlock, 0x1234);
  std::vector<SimdReg> Regs(AtomsPerBlock);
  size_t BytesPerBatch = size_t{Slices} * AtomsPerBlock * MBits / 8;
  if (BytesPerBatch == 0)
    BytesPerBatch = 1;
  unsigned Iters = 2048;
  return measureCyclesPerByte(
      [&] {
        for (unsigned I = 0; I < Iters; ++I) {
          Layout.pack(Blocks.data(), AtomsPerBlock, Regs.data());
          Layout.unpack(Regs.data(), AtomsPerBlock, Blocks.data());
        }
      },
      BytesPerBatch * Iters);
}

} // namespace

int main() {
  std::printf("Section 4.3: transposition cost per layout "
              "(pack+unpack, cycles per cipher byte; portable scalar "
              "transposition — see DESIGN.md)\n\n");
  const std::vector<int> W = {16, 10, 10, 10, 10, 10};
  printRow({"layout", "gp64", "sse", "avx", "avx2", "avx512"}, W);

  struct Case {
    const char *Label;
    Dir Direction;
    unsigned MBits;
    unsigned Atoms;
  };
  const Case Cases[] = {
      {"uV16x4 (rect)", Dir::Vert, 16, 4},
      {"uH16x4 (rect)", Dir::Horiz, 16, 4},
      {"b1x64 (bitsl.)", Dir::Vert, 1, 64},
      {"uV32x16 (chacha)", Dir::Vert, 32, 16},
      {"uH16x8 (aes)", Dir::Horiz, 16, 8},
  };

  unsigned Count = 0;
  const Arch *const *Archs = allArchs(Count);
  for (const Case &C : Cases) {
    std::vector<std::string> Cells = {C.Label};
    for (unsigned A = 0; A < Count; ++A) {
      if (C.Direction == Dir::Horiz && !Archs[A]->HasShuffle) {
        Cells.push_back("-");
        continue;
      }
      Cells.push_back(fmt(layoutCost(C.Direction, C.MBits, *Archs[A],
                                     C.Atoms)));
    }
    printRow(Cells, W);
  }

  std::printf("\nPaper shape: vertical transposition is far cheaper than "
              "horizontal or bitslice transposition, and the gap widens "
              "with register width.\n");
  return 0;
}
