//===- fig3_scalability.cpp - Paper Figure 3 ------------------------------===//
//
// Part of the usuba-cpp project, under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates Figure 3 ("Scalability of SIMD compilation"): for each
/// cipher x slicing-mode combination the paper plots, the kernel-only
/// throughput on GP-64bit, SSE, AVX (128-bit), AVX2 and AVX512, and the
/// speedup relative to the combination's slowest supported target —
/// reproducing the figure's bars. Transposition is excluded, as in the
/// paper ("We omitted the cost of transposition in this benchmark").
///
/// Bitsliced AES emits >100k instructions (our BDD-synthesized S-box is
/// ~10x the hand-optimized one); it is included only with
/// USUBA_BENCH_FULL=1 to keep default runs short.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchSupport.h"

#include <cstdio>

using namespace usuba;
using namespace usuba::bench;

namespace {

struct Combo {
  const char *Label;
  CipherId Id;
  SlicingMode Slicing;
  bool Heavy; ///< only in USUBA_BENCH_FULL mode
};

const Combo Combos[] = {
    {"Rectangle (bitslice)", CipherId::Rectangle, SlicingMode::Bitslice,
     false},
    {"DES (bitslice)", CipherId::Des, SlicingMode::Bitslice, false},
    {"AES (bitslice)", CipherId::Aes128, SlicingMode::Bitslice, true},
    {"Rectangle (hslice)", CipherId::Rectangle, SlicingMode::Hslice, false},
    {"AES (hslice)", CipherId::Aes128, SlicingMode::Hslice, false},
    {"Rectangle (vslice)", CipherId::Rectangle, SlicingMode::Vslice, false},
    {"Serpent (vslice)", CipherId::Serpent, SlicingMode::Vslice, false},
    {"Chacha20 (vslice)", CipherId::Chacha20, SlicingMode::Vslice, false},
};

const ArchKind Targets[] = {ArchKind::GP64, ArchKind::SSE, ArchKind::AVX,
                            ArchKind::AVX2, ArchKind::AVX512};

} // namespace

int main() {
  std::printf("Figure 3 reproduction: speedup of each cipher/slicing "
              "across SIMD generations (kernel only, vs the slowest "
              "supported target; cycles/byte in parentheses)\n\n");
  const std::vector<int> W = {22, 18, 18, 18, 18, 18};
  printRow({"combination", "GP64", "SSE-128", "AVX-128", "AVX2-256",
            "AVX512-512"},
           W);

  for (const Combo &C : Combos) {
    if (C.Heavy && !fullMode()) {
      printRow({C.Label, "(set USUBA_BENCH_FULL=1)"}, W);
      continue;
    }
    double Cpb[5];
    bool Supported[5];
    std::string Tags[5];
    double Baseline = -1;
    for (unsigned T = 0; T < 5; ++T) {
      std::optional<UsubaCipher> Cipher =
          makeCipher(C.Id, C.Slicing, archFor(Targets[T]));
      Supported[T] = Cipher.has_value();
      if (!Supported[T])
        continue;
      Cpb[T] = kernelCyclesPerByte(*Cipher);
      Tags[T] = engineTag(*Cipher);
      if (Baseline < 0)
        Baseline = Cpb[T]; // slowest = first supported (narrowest) target
    }
    std::vector<std::string> Cells = {C.Label};
    for (unsigned T = 0; T < 5; ++T) {
      if (!Supported[T]) {
        Cells.push_back("-");
        continue;
      }
      Cells.push_back(fmt(Baseline / Cpb[T], 2) + "x (" + fmt(Cpb[T], 2) +
                      (Tags[T] == "sim" ? " sim)" : ")"));
    }
    printRow(Cells, W);
  }

  std::printf("\nPaper shape: bitsliced Rectangle/DES scale ~5x to "
              "AVX512; bitsliced AES does not scale (spilling); m-sliced "
              "code doubles with register width and gains again on "
              "AVX512 (vpternlog).\n");
  return 0;
}
